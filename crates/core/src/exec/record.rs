//! Records and variable bindings.
//!
//! A record is one row of intermediate state flowing through the execution
//! plan: a fixed-width vector of [`Value`]s, one slot per bound variable. The
//! slot layout is decided once at plan-build time by [`Bindings`].

use crate::value::Value;
use std::collections::HashMap;

/// Maps variable names to record slots. Built during planning; shared by every
/// operation of the plan.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    slots: HashMap<String, usize>,
    names: Vec<String>,
}

impl Bindings {
    /// Create an empty binding table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get the slot of a variable, creating one if it is new.
    pub fn slot_or_create(&mut self, name: &str) -> usize {
        if let Some(&slot) = self.slots.get(name) {
            return slot;
        }
        let slot = self.names.len();
        self.slots.insert(name.to_string(), slot);
        self.names.push(name.to_string());
        slot
    }

    /// Get the slot of a variable, if bound.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.slots.get(name).copied()
    }

    /// True if the variable is bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.slots.contains_key(name)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Variable name for a slot.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }
}

/// One row of intermediate execution state.
pub type Record = Vec<Value>;

/// Create an empty record sized for the binding table (all slots `Null`).
pub fn empty_record(bindings: &Bindings) -> Record {
    vec![Value::Null; bindings.len()]
}

/// Extend an existing record to the current binding width (new slots `Null`).
pub fn widen(record: &mut Record, bindings: &Bindings) {
    record.resize(bindings.len(), Value::Null);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_assigned_once() {
        let mut b = Bindings::new();
        assert_eq!(b.slot_or_create("a"), 0);
        assert_eq!(b.slot_or_create("b"), 1);
        assert_eq!(b.slot_or_create("a"), 0);
        assert_eq!(b.len(), 2);
        assert!(b.is_bound("a"));
        assert!(!b.is_bound("c"));
        assert_eq!(b.slot("b"), Some(1));
        assert_eq!(b.name(1), "b");
    }

    #[test]
    fn records_widen_with_nulls() {
        let mut b = Bindings::new();
        b.slot_or_create("a");
        let mut r = empty_record(&b);
        r[0] = Value::Int(1);
        b.slot_or_create("b");
        widen(&mut r, &b);
        assert_eq!(r, vec![Value::Int(1), Value::Null]);
    }
}
