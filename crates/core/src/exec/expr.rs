//! Expression evaluation over records.
//!
//! Implements the scalar part of the supported openCypher expression language:
//! literals, variables, property access, arithmetic, comparisons, boolean
//! connectives, `IN`, and the scalar functions `id`, `labels`, `type`, `size`,
//! `abs`, `tointeger`, `tofloat`.

use crate::exec::record::{Bindings, Record};
use crate::store::graph::Graph;
use crate::value::Value;
use cypher::{BinaryOperator, Expr, UnaryOperator};

/// Names of the aggregation functions handled by the aggregate operation (and
/// therefore *not* evaluated here).
pub const AGGREGATE_FUNCTIONS: &[&str] = &["count", "sum", "avg", "min", "max", "collect"];

/// True if the expression contains an aggregation function call anywhere.
pub fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::FunctionCall { name, args, .. } => {
            AGGREGATE_FUNCTIONS.contains(&name.as_str()) || args.iter().any(contains_aggregate)
        }
        Expr::Unary(_, inner) => contains_aggregate(inner),
        Expr::Binary(_, lhs, rhs) => contains_aggregate(lhs) || contains_aggregate(rhs),
        Expr::List(items) => items.iter().any(contains_aggregate),
        _ => false,
    }
}

/// Evaluate an expression against one record.
///
/// Unknown variables and type mismatches evaluate to `Null` (openCypher's
/// three-valued logic treats them as unknown rather than failing the query).
pub fn eval(expr: &Expr, record: &Record, bindings: &Bindings, graph: &Graph) -> Value {
    match expr {
        Expr::Literal(lit) => Value::from(lit),
        Expr::Parameter(_) => Value::Null,
        Expr::Variable(name) => match bindings.slot(name) {
            Some(slot) => record.get(slot).cloned().unwrap_or(Value::Null),
            None => Value::Null,
        },
        Expr::Property(var, key) => {
            let entity = match bindings.slot(var) {
                Some(slot) => record.get(slot).cloned().unwrap_or(Value::Null),
                None => Value::Null,
            };
            match entity {
                Value::Node(id) => graph.node_property(id, key),
                Value::Edge(id) => graph.edge_property(id, key),
                _ => Value::Null,
            }
        }
        Expr::Unary(op, inner) => {
            let v = eval(inner, record, bindings, graph);
            match op {
                UnaryOperator::Not => match v {
                    Value::Bool(b) => Value::Bool(!b),
                    Value::Null => Value::Null,
                    _ => Value::Null,
                },
                UnaryOperator::Minus => match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    _ => Value::Null,
                },
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let l = eval(lhs, record, bindings, graph);
            let r = eval(rhs, record, bindings, graph);
            eval_binary(*op, &l, &r)
        }
        Expr::List(items) => {
            Value::List(items.iter().map(|e| eval(e, record, bindings, graph)).collect())
        }
        Expr::FunctionCall { name, args, .. } => {
            let argv: Vec<Value> = args.iter().map(|a| eval(a, record, bindings, graph)).collect();
            eval_function(name, &argv, graph)
        }
    }
}

fn eval_binary(op: BinaryOperator, l: &Value, r: &Value) -> Value {
    use BinaryOperator::*;
    match op {
        And => match (l, r) {
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
            (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        Or => match (l, r) {
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
            (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        Xor => match (l, r) {
            (Value::Bool(a), Value::Bool(b)) => Value::Bool(a ^ b),
            _ => Value::Null,
        },
        Eq => l.cypher_eq(r).map(Value::Bool).unwrap_or(Value::Null),
        Ne => l.cypher_eq(r).map(|e| Value::Bool(!e)).unwrap_or(Value::Null),
        Lt => l.cypher_cmp(r).map(|o| Value::Bool(o.is_lt())).unwrap_or(Value::Null),
        Le => l.cypher_cmp(r).map(|o| Value::Bool(o.is_le())).unwrap_or(Value::Null),
        Gt => l.cypher_cmp(r).map(|o| Value::Bool(o.is_gt())).unwrap_or(Value::Null),
        Ge => l.cypher_cmp(r).map(|o| Value::Bool(o.is_ge())).unwrap_or(Value::Null),
        Add => l.add(r),
        Sub => l.sub(r),
        Mul => l.mul(r),
        Div => l.div(r),
        Mod => l.rem(r),
        In => match r {
            Value::List(items) => {
                if l.is_null() {
                    return Value::Null;
                }
                Value::Bool(items.iter().any(|item| l.cypher_eq(item) == Some(true)))
            }
            Value::Null => Value::Null,
            _ => Value::Null,
        },
    }
}

fn eval_function(name: &str, args: &[Value], graph: &Graph) -> Value {
    match name {
        "id" => match args.first() {
            Some(Value::Node(id)) => Value::Int(*id as i64),
            Some(Value::Edge(id)) => Value::Int(*id as i64),
            _ => Value::Null,
        },
        "labels" => match args.first() {
            Some(Value::Node(id)) => {
                let Some(node) = graph.node(*id) else { return Value::Null };
                Value::List(
                    node.labels
                        .iter()
                        .filter_map(|&l| graph.schema.label_name(l))
                        .map(|s| Value::Str(s.to_string()))
                        .collect(),
                )
            }
            _ => Value::Null,
        },
        "type" => match args.first() {
            Some(Value::Edge(id)) => {
                let Some(edge) = graph.edge(*id) else { return Value::Null };
                graph
                    .schema
                    .rel_type_name(edge.rel_type)
                    .map(|s| Value::Str(s.to_string()))
                    .unwrap_or(Value::Null)
            }
            _ => Value::Null,
        },
        "size" => match args.first() {
            Some(Value::List(items)) => Value::Int(items.len() as i64),
            Some(Value::Str(s)) => Value::Int(s.len() as i64),
            _ => Value::Null,
        },
        "abs" => match args.first() {
            Some(Value::Int(i)) => Value::Int(i.abs()),
            Some(Value::Float(f)) => Value::Float(f.abs()),
            _ => Value::Null,
        },
        "tointeger" => args.first().and_then(|v| v.as_i64()).map(Value::Int).unwrap_or(Value::Null),
        "tofloat" => args.first().and_then(|v| v.as_f64()).map(Value::Float).unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher::Literal;

    fn setup() -> (Graph, Bindings, Record) {
        let mut g = Graph::new("t");
        let a = g.add_node(
            &["Person"],
            vec![("name", Value::Str("ann".into())), ("age", Value::Int(34))],
        );
        let b = g.add_node(&["Person"], vec![("age", Value::Int(28))]);
        let e = g.add_edge(a, b, "KNOWS", vec![("since", Value::Int(2019))]).unwrap();
        g.sync_matrices();
        let mut bindings = Bindings::new();
        bindings.slot_or_create("a");
        bindings.slot_or_create("b");
        bindings.slot_or_create("e");
        let record = vec![Value::Node(a), Value::Node(b), Value::Edge(e)];
        (g, bindings, record)
    }

    fn lit(i: i64) -> Expr {
        Expr::Literal(Literal::Integer(i))
    }

    #[test]
    fn property_access_and_comparison() {
        let (g, b, r) = setup();
        let expr = Expr::Binary(
            BinaryOperator::Gt,
            Box::new(Expr::Property("a".into(), "age".into())),
            Box::new(lit(30)),
        );
        assert_eq!(eval(&expr, &r, &b, &g), Value::Bool(true));
        let missing = Expr::Property("a".into(), "salary".into());
        assert_eq!(eval(&missing, &r, &b, &g), Value::Null);
    }

    #[test]
    fn boolean_three_valued_logic() {
        let (g, b, r) = setup();
        let null = Expr::Literal(Literal::Null);
        let t = Expr::Literal(Literal::Bool(true));
        let f = Expr::Literal(Literal::Bool(false));
        let and_nf = Expr::Binary(BinaryOperator::And, Box::new(null.clone()), Box::new(f.clone()));
        assert_eq!(eval(&and_nf, &r, &b, &g), Value::Bool(false));
        let and_nt = Expr::Binary(BinaryOperator::And, Box::new(null.clone()), Box::new(t.clone()));
        assert_eq!(eval(&and_nt, &r, &b, &g), Value::Null);
        let or_nt = Expr::Binary(BinaryOperator::Or, Box::new(null), Box::new(t));
        assert_eq!(eval(&or_nt, &r, &b, &g), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        let (g, b, r) = setup();
        let id = Expr::FunctionCall {
            name: "id".into(),
            args: vec![Expr::Variable("a".into())],
            distinct: false,
        };
        assert_eq!(eval(&id, &r, &b, &g), Value::Int(0));
        let labels = Expr::FunctionCall {
            name: "labels".into(),
            args: vec![Expr::Variable("a".into())],
            distinct: false,
        };
        assert_eq!(eval(&labels, &r, &b, &g), Value::List(vec![Value::Str("Person".into())]));
        let ty = Expr::FunctionCall {
            name: "type".into(),
            args: vec![Expr::Variable("e".into())],
            distinct: false,
        };
        assert_eq!(eval(&ty, &r, &b, &g), Value::Str("KNOWS".into()));
        let abs = Expr::FunctionCall {
            name: "abs".into(),
            args: vec![Expr::Unary(UnaryOperator::Minus, Box::new(lit(5)))],
            distinct: false,
        };
        assert_eq!(eval(&abs, &r, &b, &g), Value::Int(5));
    }

    #[test]
    fn in_operator() {
        let (g, b, r) = setup();
        let expr = Expr::Binary(
            BinaryOperator::In,
            Box::new(lit(2)),
            Box::new(Expr::List(vec![lit(1), lit(2), lit(3)])),
        );
        assert_eq!(eval(&expr, &r, &b, &g), Value::Bool(true));
        let expr =
            Expr::Binary(BinaryOperator::In, Box::new(lit(9)), Box::new(Expr::List(vec![lit(1)])));
        assert_eq!(eval(&expr, &r, &b, &g), Value::Bool(false));
    }

    #[test]
    fn unknown_variables_are_null() {
        let (g, b, r) = setup();
        assert_eq!(eval(&Expr::Variable("zz".into()), &r, &b, &g), Value::Null);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::FunctionCall { name: "count".into(), args: vec![], distinct: false };
        assert!(contains_aggregate(&agg));
        let nested = Expr::Binary(BinaryOperator::Add, Box::new(agg), Box::new(lit(1)));
        assert!(contains_aggregate(&nested));
        assert!(!contains_aggregate(&Expr::Variable("a".into())));
        let scalar_fn = Expr::FunctionCall { name: "id".into(), args: vec![], distinct: false };
        assert!(!contains_aggregate(&scalar_fn));
    }
}
