//! The algebraic expression optimizer.
//!
//! The paper's thesis is that a Cypher pattern *is* a product of sparse
//! matrices. The naive planner nevertheless emits one `Traverse` op per hop
//! and materialises a full record batch between hops — on a 3-hop chain with
//! millions of result rows, nearly all the wall time goes into cloning
//! intermediate records that the query never returns. This module closes
//! that gap: [`fuse_plan`] rewrites eligible runs of single-hop `Traverse`
//! ops (plus adjacent `LabelFilter`s) into one [`PlanOp::FusedTraverse`]
//! holding an [`AlgebraicExpression`], and [`run_fused`] evaluates the whole
//! chain as one matrix product `F·A_R·A_S` under the **counting semiring**
//! (⊕ = +, ⊗ = ×) so every output cell holds the exact number of distinct
//! paths — parallel edges included, via [`Graph::relation_count_matrix`].
//!
//! Three optimisations compose here:
//!
//! * **Chain fusion** — a fixed-length chain `(a)-[:R]->(b)-[:S]->(c)` whose
//!   intermediates are unbound (not referenced by any later op) becomes the
//!   single product `F·A_R·A_S`; no intermediate records exist at all.
//! * **Mask pushdown** — a label predicate adjacent to a fused hop becomes a
//!   structural column mask on the hop's operand (`(a)-[:R]->(b:B)` filters
//!   the columns of `A_R` by the `B` diagonal before multiplying) instead of
//!   a post-hoc record filter.
//! * **Cost-based ordering** — the product is parenthesised by a classic
//!   matrix-chain DP over nnz estimates taken from the operand CSRs at
//!   execution time (density model: `nnz(AB) ≈ nnz(A)·nnz(B)/inner`), so a
//!   tiny frontier is applied first but two mid-chain hops whose product is
//!   predicted smaller than either operand multiply each other first.
//!
//! When the op directly downstream of a fused chain is an `Aggregate` whose
//! aggregates are all *weightable* (`count`/`sum`/`avg`/`min`/`max`, no
//! `DISTINCT`, no `collect`), the fused op emits **one** compact record per
//! `(record, dst)` cell carrying the path count in a hidden weight slot and
//! the aggregation folds the weight (`count += k`, `sum += v·k`) — the
//! product's counts never get expanded into rows at all, which is where the
//! order-of-magnitude win on aggregate-only chains comes from. Any other
//! consumer gets full expansion: `k` identical records per cell, exactly the
//! multiset the unfused plan produces.

use crate::exec::expr::contains_aggregate;
use crate::exec::ops::PlanOp;
use crate::exec::plan::Segment;
use crate::exec::record::{Bindings, Record};
use crate::store::graph::Graph;
use crate::value::Value;
use cypher::{Direction, Expr, Projection};
use graphblas::prelude::*;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// One multiplicative operand of an [`AlgebraicExpression`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraicOperand {
    /// A relation-matrix hop `A_R` (or `Aᵀ_R` against the incrementally
    /// maintained transpose for incoming hops). An empty type list is the
    /// untyped hop: the ⊕ of every relation matrix.
    Rel {
        /// Relationship type names (empty = any type).
        rel_types: Vec<String>,
        /// Traverse against the transpose (incoming pattern direction).
        transposed: bool,
        /// Label mask pushed down onto this operand's columns
        /// (`(…)-[:R]->(b:B)` stores `B` here, not a `LabelFilter` op).
        dst_labels: Vec<String>,
    },
}

/// A fused fixed-length chain as one algebraic product, e.g. `(a:F)·A_R·A_S`.
///
/// The frontier `F` (one row per distinct bound source) is always the
/// leftmost operand; the rendering carries the source variable (and its
/// scanned label, when the access path pinned one) so `GRAPH.EXPLAIN` reads
/// like the paper's notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgebraicExpression {
    /// Source variable name (the frontier operand).
    pub src_var: String,
    /// Label of the source access path, when it was a label scan.
    pub src_label: Option<String>,
    /// The hop operands, left to right.
    pub operands: Vec<AlgebraicOperand>,
}

impl fmt::Display for AlgebraicExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.src_label {
            Some(label) => write!(f, "({}:{})", self.src_var, label)?,
            None => write!(f, "({})", self.src_var)?,
        }
        for op in &self.operands {
            let AlgebraicOperand::Rel { rel_types, transposed, dst_labels } = op;
            let types = if rel_types.is_empty() { "*".to_string() } else { rel_types.join("|") };
            let t = if *transposed { "ᵀ" } else { "" };
            write!(f, "·A{t}_{types}")?;
            for label in dst_labels {
                write!(f, "·L_{label}")?;
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------- execution

/// Evaluate a fused chain: build the frontier, materialise the counting
/// operands (label masks pushed into their columns), multiply in the
/// DP-chosen parenthesisation under ⊕=+/⊗=×, and emit records.
#[allow(clippy::too_many_arguments)]
pub fn run_fused(
    records: &[Record],
    bindings: &Bindings,
    graph: &Graph,
    src_slot: usize,
    dst_slot: usize,
    expr: &AlgebraicExpression,
    weight_slot: Option<usize>,
    nthreads: usize,
) -> Vec<Record> {
    let Some(operands) = materialise_operands(graph, expr) else {
        return Vec::new(); // an unknown type or label matches nothing
    };

    // One frontier row per distinct source node (records fanning out of the
    // same hub share one product row).
    let mut src_row: HashMap<u64, u64> = HashMap::new();
    let mut entries: Vec<(u64, u64)> = Vec::new();
    let mut record_rows: Vec<Option<u64>> = Vec::with_capacity(records.len());
    for r in records {
        match r.get(src_slot) {
            Some(Value::Node(s)) => {
                let row = *src_row.entry(*s).or_insert_with(|| {
                    let row = entries.len() as u64;
                    entries.push((row, *s));
                    row
                });
                record_rows.push(Some(row));
            }
            _ => record_rows.push(None),
        }
    }
    if entries.is_empty() {
        return Vec::new();
    }
    let frontier = Arc::new(frontier_matrix::<u64>(entries.len() as u64, graph.dim(), &entries, 1));

    let mut chain = Vec::with_capacity(operands.len() + 1);
    chain.push(frontier);
    chain.extend(operands);
    let product = chain_product(chain, nthreads);

    // Emission: record-major, destinations ascending. With a weight slot the
    // count stays algebraic — one compact record per cell; otherwise each
    // cell expands to `count` identical records (the unfused multiset).
    let mut out = Vec::new();
    for (record, row) in records.iter().zip(&record_rows) {
        let Some(row) = *row else { continue };
        let (cols, counts) = probe_row(&product, row);
        for (&dst, &count) in cols.iter().zip(counts.iter()) {
            let copies = if weight_slot.is_some() { 1 } else { count };
            for _ in 0..copies {
                let mut r = record.clone();
                if r.len() < bindings.len() {
                    r.resize(bindings.len(), Value::Null);
                }
                r[dst_slot] = Value::Node(dst);
                if let Some(ws) = weight_slot {
                    r[ws] = Value::Int(count as i64);
                }
                out.push(r);
            }
        }
    }
    out
}

/// Build the counting matrices for every hop operand. `None` when a named
/// relationship type or label does not exist (nothing can match). The plain
/// single-type, unmasked operand — the common case — comes straight out of
/// the graph's epoch-scoped memo (`Arc`-shared, no per-query rebuild); only
/// multi-type sums and label-masked operands construct a fresh matrix.
fn materialise_operands(
    graph: &Graph,
    expr: &AlgebraicExpression,
) -> Option<Vec<Arc<SparseMatrix<u64>>>> {
    let mut out = Vec::with_capacity(expr.operands.len());
    for op in &expr.operands {
        let AlgebraicOperand::Rel { rel_types, transposed, dst_labels } = op;
        let rels: Vec<usize> = if rel_types.is_empty() {
            (0..graph.relation_type_count()).collect()
        } else {
            let ids: Vec<usize> =
                rel_types.iter().filter_map(|t| graph.schema.rel_type_id(t)).collect();
            if ids.len() != rel_types.len() {
                return None;
            }
            ids
        };
        // ⊕ the per-type counting matrices (multi-type / untyped hops).
        let mut acc: Option<Arc<SparseMatrix<u64>>> = None;
        for rel in rels {
            if let Some(m) = graph.relation_count_matrix_cached(rel, *transposed) {
                acc = Some(match acc.take() {
                    None => m,
                    Some(prev) => Arc::new(ewise_add_matrix(&prev, &m, &BinaryOp::Plus)),
                });
            }
        }
        let mut m = acc.unwrap_or_else(|| Arc::new(SparseMatrix::new(graph.dim(), graph.dim())));
        // Mask pushdown: restrict the operand's columns to the labelled
        // destinations before any multiplication sees them.
        for label in dst_labels {
            graph.schema.label_id(label)?;
            let keep: HashSet<u64> = graph.nodes_with_label(label).into_iter().collect();
            let triples: Vec<(u64, u64, u64)> =
                m.iter().filter(|(_, c, _)| keep.contains(c)).collect();
            m = Arc::new(
                SparseMatrix::from_triples(m.nrows(), m.ncols(), &triples)
                    .expect("filtered triples stay in range"),
            );
        }
        out.push(m);
    }
    Some(out)
}

/// Multiply a chain of counting matrices in the cheapest parenthesisation.
///
/// Classic matrix-chain DP, costing each candidate product by the density
/// estimate `flops(AB) ≈ nnz(A)·nnz(B)/inner` and carrying
/// `nnz(AB) ≈ min(rows·cols, flops)` upward — the nnz figures come straight
/// from the operand CSRs, so the ordering adapts to the actual graph (a
/// selective label mask mid-chain pulls its neighbours together first).
fn chain_product(mats: Vec<Arc<SparseMatrix<u64>>>, nthreads: usize) -> SparseMatrix<u64> {
    let n = mats.len();
    let mut mats: Vec<Option<Arc<SparseMatrix<u64>>>> = mats.into_iter().map(Some).collect();
    if n == 1 {
        let only = mats[0].take().expect("single operand");
        return Arc::try_unwrap(only).unwrap_or_else(|shared| (*shared).clone());
    }
    let rows: Vec<f64> = mats.iter().map(|m| m.as_ref().unwrap().nrows() as f64).collect();
    let cols: Vec<f64> = mats.iter().map(|m| m.as_ref().unwrap().ncols() as f64).collect();

    // est[i][j]: estimated nnz of the product of operands i..=j (independent
    // of parenthesisation under the density model).
    let mut est = vec![vec![0f64; n]; n];
    for i in 0..n {
        est[i][i] = mats[i].as_ref().unwrap().nvals() as f64;
        for j in i + 1..n {
            let grow = est[j][j] / rows[j].max(1.0); // avg out-degree of operand j
            est[i][j] = (est[i][j - 1] * grow).min(rows[i] * cols[j]);
        }
    }
    let mut cost = vec![vec![0f64; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            cost[i][j] = f64::INFINITY;
            for s in i..j {
                let flops = est[i][s] * est[s + 1][j] / cols[s].max(1.0);
                let c = cost[i][s] + cost[s + 1][j] + flops;
                if c < cost[i][j] {
                    cost[i][j] = c;
                    split[i][j] = s;
                }
            }
        }
    }

    let semiring = Semiring::<u64>::plus_times();
    let desc = Descriptor::new().with_nthreads(nthreads);
    fn eval(
        i: usize,
        j: usize,
        mats: &mut [Option<Arc<SparseMatrix<u64>>>],
        split: &[Vec<usize>],
        semiring: &Semiring<u64>,
        desc: &Descriptor,
    ) -> Arc<SparseMatrix<u64>> {
        if i == j {
            return mats[i].take().expect("each leaf is consumed once");
        }
        let s = split[i][j];
        let left = eval(i, s, mats, split, semiring, desc);
        let right = eval(s + 1, j, mats, split, semiring, desc);
        Arc::new(mxm(&left, &right, semiring, None, desc))
    }
    let product = eval(0, n - 1, &mut mats, &split, &semiring, &desc);
    // The root product was just built here, so this unwrap never copies.
    Arc::try_unwrap(product).unwrap_or_else(|shared| (*shared).clone())
}

// ---------------------------------------------------------------- fusion

/// Rewrite every segment of a freshly built plan: eligible traverse chains
/// become [`PlanOp::FusedTraverse`] ops (see the module docs for the rules).
pub(crate) fn fuse_plan(segments: &mut [Segment]) {
    for seg in segments {
        fuse_segment(seg);
    }
}

/// A traverse op's fields, when it is fusable on its own terms: exactly one
/// hop, a fresh (not expand-into) destination, no bound edge, and a fixed
/// direction (`Both` would double-count self-loops in a summed operand).
struct Hop<'a> {
    src_slot: usize,
    dst_slot: usize,
    dst_var: &'a str,
    rel_types: &'a [String],
    transposed: bool,
}

fn fusable_hop(op: &PlanOp) -> Option<Hop<'_>> {
    match op {
        PlanOp::Traverse {
            src_slot,
            dst_slot,
            dst_var,
            edge_slot: None,
            rel_types,
            direction,
            min_hops: 1,
            max_hops: Some(1),
            expand_into: false,
        } => {
            let transposed = match direction {
                Direction::Outgoing => false,
                Direction::Incoming => true,
                Direction::Both => return None,
            };
            Some(Hop { src_slot: *src_slot, dst_slot: *dst_slot, dst_var, rel_types, transposed })
        }
        _ => None,
    }
}

fn fuse_segment(seg: &mut Segment) {
    let mut i = 0;
    while i < seg.ops.len() {
        match try_fuse_at(seg, i) {
            Some(next) => i = next,
            None => i += 1,
        }
    }
}

/// One chain element: the traverse op's index plus the indices of the
/// `LabelFilter` ops immediately following it that constrain its destination.
struct ChainElem {
    traverse: usize,
    labels: Vec<usize>,
    /// Index of the first op after this element (traverse + labels).
    end: usize,
}

/// Attempt to fuse a chain starting at op `i`. Returns the index to resume
/// scanning from when a rewrite happened.
fn try_fuse_at(seg: &mut Segment, i: usize) -> Option<usize> {
    let ops = &seg.ops;
    fusable_hop(&ops[i])?;

    // Collect the maximal structural chain: traverse, its dst label filters,
    // then a traverse continuing from that dst, and so on.
    let mut chain: Vec<ChainElem> = Vec::new();
    let mut j = i;
    loop {
        let hop = fusable_hop(&ops[j]).expect("checked before entering");
        let mut k = j + 1;
        let mut labels = Vec::new();
        while k < ops.len() {
            match &ops[k] {
                PlanOp::LabelFilter { slot, .. } if *slot == hop.dst_slot => {
                    labels.push(k);
                    k += 1;
                }
                _ => break,
            }
        }
        let dst_slot = hop.dst_slot;
        chain.push(ChainElem { traverse: j, labels, end: k });
        match ops.get(k).and_then(fusable_hop) {
            Some(next) if next.src_slot == dst_slot => j = k,
            _ => break,
        }
    }
    let chain_end = chain.last().expect("non-empty").end;

    // The run extends while each intermediate destination is dead weight:
    // not referenced by any op outside the chain. The first live destination
    // ends the run (it becomes the fused op's output).
    let mut last = chain.len() - 1;
    for (m, elem) in chain.iter().enumerate() {
        if m == chain.len() - 1 {
            break;
        }
        let hop = fusable_hop(&seg.ops[elem.traverse]).expect("chain element");
        let used = seg.ops[chain_end..].iter().any(|op| op_uses(op, hop.dst_var, hop.dst_slot));
        if used {
            last = m;
            break;
        }
    }
    let run = &chain[..=last];
    let n_labels: usize = run.iter().map(|e| e.labels.len()).sum();
    // A lone unlabelled hop gains nothing from fusion (and would lose the
    // batched path's shared-row probing); require a real chain or a pushdown.
    if run.len() < 2 && n_labels == 0 {
        return None;
    }

    // Assemble the expression.
    let first = fusable_hop(&seg.ops[run[0].traverse]).expect("chain element");
    let src_slot = first.src_slot;
    let src_var = seg.bindings.name(src_slot).to_string();
    let src_label = seg.ops[..i].iter().find_map(|op| match op {
        PlanOp::NodeByLabelScan { slot, label, .. } if *slot == src_slot => Some(label.clone()),
        _ => None,
    });
    let mut operands = Vec::with_capacity(run.len());
    for elem in run {
        let hop = fusable_hop(&seg.ops[elem.traverse]).expect("chain element");
        let dst_labels = elem
            .labels
            .iter()
            .map(|&k| match &seg.ops[k] {
                PlanOp::LabelFilter { label, .. } => label.clone(),
                _ => unreachable!("collected as a label filter"),
            })
            .collect();
        operands.push(AlgebraicOperand::Rel {
            rel_types: hop.rel_types.to_vec(),
            transposed: hop.transposed,
            dst_labels,
        });
    }
    let final_hop = fusable_hop(&seg.ops[run[last].traverse]).expect("chain element");
    let (dst_slot, dst_var) = (final_hop.dst_slot, final_hop.dst_var.to_string());
    let run_end = run[last].end;

    // Weighted emission: the op right after the run must be an aggregation
    // that folds weights exactly (no DISTINCT, no collect). The hidden slot
    // is appended to the segment's bindings; records not produced by the
    // fused op leave it Null, which the aggregation reads as weight 1.
    let weight_slot = match seg.ops.get(run_end) {
        Some(PlanOp::Aggregate { projection, .. }) if weightable(projection) => {
            Some(seg.bindings.slot_or_create(&format!("@weight_{i}")))
        }
        _ => None,
    };

    let fused = PlanOp::FusedTraverse {
        src_slot,
        dst_slot,
        dst_var,
        expr: AlgebraicExpression { src_var, src_label, operands },
        weight_slot,
    };
    seg.ops.splice(i..run_end, [fused]);
    if let Some(ws) = weight_slot {
        if let Some(PlanOp::Aggregate { weight_slot, .. }) = seg.ops.get_mut(i + 1) {
            *weight_slot = Some(ws);
        }
    }
    Some(i + 1)
}

/// True when every aggregate of the projection folds a per-record weight
/// exactly: `count`/`sum`/`avg` scale linearly, `min`/`max` ignore
/// duplicates. `DISTINCT` and `collect` need the expanded multiset.
fn weightable(projection: &Projection) -> bool {
    use crate::exec::aggregate::AggFunc;
    projection.items.iter().all(|item| {
        if !contains_aggregate(&item.expr) {
            return true;
        }
        match &item.expr {
            Expr::FunctionCall { name, distinct, .. } => {
                !*distinct
                    && matches!(
                        AggFunc::from_name(name),
                        Some(
                            AggFunc::Count
                                | AggFunc::Sum
                                | AggFunc::Avg
                                | AggFunc::Min
                                | AggFunc::Max
                        )
                    )
            }
            _ => false,
        }
    })
}

/// Does an op read or write the given variable (by slot or by name)?
/// Conservative: any mention counts as a use.
fn op_uses(op: &PlanOp, var: &str, slot: usize) -> bool {
    let expr_uses = |e: &Expr| expr_mentions(e, var);
    match op {
        PlanOp::AllNodeScan { slot: s, .. } | PlanOp::NodeByLabelScan { slot: s, .. } => *s == slot,
        PlanOp::NodeByIdSeek { slot: s, id_expr, .. } => *s == slot || expr_uses(id_expr),
        PlanOp::Filter { expr } => expr_uses(expr),
        PlanOp::LabelFilter { slot: s, .. } => *s == slot,
        PlanOp::PropFilter { slot: s, .. } => *s == slot,
        PlanOp::Traverse { src_slot, dst_slot, edge_slot, .. } => {
            *src_slot == slot || *dst_slot == slot || *edge_slot == Some(slot)
        }
        PlanOp::FusedTraverse { src_slot, dst_slot, .. } => *src_slot == slot || *dst_slot == slot,
        PlanOp::Project(p) | PlanOp::With(p) => projection_uses(p, var),
        PlanOp::Aggregate { projection, .. } => projection_uses(projection, var),
        PlanOp::Create { patterns } => patterns.iter().any(|pat| {
            pat.nodes().iter().any(|n| n.variable.as_deref() == Some(var))
                || pat.steps.iter().any(|(r, _)| r.variable.as_deref() == Some(var))
        }),
        PlanOp::Delete { vars, .. } => vars.iter().any(|v| v == var),
        PlanOp::SetProps { items } => {
            items.iter().any(|item| item.variable == var || expr_uses(&item.value))
        }
        PlanOp::Unwind { list, slot: s, .. } => *s == slot || expr_uses(list),
        PlanOp::ProcedureCall { args, outputs, .. } => {
            args.iter().any(expr_uses) || outputs.iter().any(|&(_, s)| s == slot)
        }
    }
}

fn projection_uses(p: &Projection, var: &str) -> bool {
    p.items.iter().any(|item| expr_mentions(&item.expr, var))
        || p.order_by.iter().any(|(e, _)| expr_mentions(e, var))
}

fn expr_mentions(expr: &Expr, var: &str) -> bool {
    match expr {
        Expr::Variable(v) | Expr::Property(v, _) => v == var,
        Expr::Literal(_) | Expr::Parameter(_) => false,
        Expr::Unary(_, inner) => expr_mentions(inner, var),
        Expr::Binary(_, lhs, rhs) => expr_mentions(lhs, var) || expr_mentions(rhs, var),
        Expr::List(items) => items.iter().any(|e| expr_mentions(e, var)),
        Expr::FunctionCall { args, .. } => args.iter().any(|e| expr_mentions(e, var)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_renders_paper_notation() {
        let expr = AlgebraicExpression {
            src_var: "a".into(),
            src_label: Some("F".into()),
            operands: vec![
                AlgebraicOperand::Rel {
                    rel_types: vec!["R".into()],
                    transposed: false,
                    dst_labels: vec![],
                },
                AlgebraicOperand::Rel {
                    rel_types: vec!["S".into()],
                    transposed: true,
                    dst_labels: vec!["B".into()],
                },
            ],
        };
        assert_eq!(expr.to_string(), "(a:F)·A_R·Aᵀ_S·L_B");
    }

    #[test]
    fn untyped_hop_renders_star() {
        let expr = AlgebraicExpression {
            src_var: "n".into(),
            src_label: None,
            operands: vec![AlgebraicOperand::Rel {
                rel_types: vec![],
                transposed: false,
                dst_labels: vec![],
            }],
        };
        assert_eq!(expr.to_string(), "(n)·A_*");
    }

    #[test]
    fn chain_product_counts_paths() {
        // F = [1 at (0,0)], A = 0→1 and 0→2, B = 1→3 and 2→3: two paths 0→3.
        let f = SparseMatrix::from_triples(1, 4, &[(0, 0, 1u64)]).unwrap();
        let a = SparseMatrix::from_triples(4, 4, &[(0, 1, 1u64), (0, 2, 1)]).unwrap();
        let b = SparseMatrix::from_triples(4, 4, &[(1, 3, 1u64), (2, 3, 1)]).unwrap();
        let c = chain_product(vec![Arc::new(f), Arc::new(a), Arc::new(b)], 1);
        assert_eq!(c.extract_element(0, 3), Some(2));
        assert_eq!(c.nvals(), 1);
    }

    #[test]
    fn chain_product_respects_multiplicity_weights() {
        // A parallel pair (count 2) times a count-3 cell = 6 paths.
        let f = SparseMatrix::from_triples(1, 3, &[(0, 0, 1u64)]).unwrap();
        let a = SparseMatrix::from_triples(3, 3, &[(0, 1, 2u64)]).unwrap();
        let b = SparseMatrix::from_triples(3, 3, &[(1, 2, 3u64)]).unwrap();
        let c = chain_product(vec![Arc::new(f), Arc::new(a), Arc::new(b)], 1);
        assert_eq!(c.extract_element(0, 2), Some(6));
    }
}
