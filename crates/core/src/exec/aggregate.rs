//! Aggregation functions for `RETURN` / `WITH` projections: `count`, `sum`,
//! `avg`, `min`, `max`, `collect`, with optional `DISTINCT`.

use crate::value::Value;

/// Incremental state of one aggregation expression within one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    distinct: bool,
    seen: Vec<Value>,
    count: u64,
    sum: f64,
    /// Exact integer running sum. i128 so intermediate i64 overflow does not
    /// lose exactness (or make the result depend on input order); the final
    /// value only demotes to float if the *total* exceeds the i64 range.
    int_sum: i128,
    all_ints: bool,
    min: Option<Value>,
    max: Option<Value>,
    collected: Vec<Value>,
}

/// The supported aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count(x)` / `count(*)`.
    Count,
    /// `sum(x)`.
    Sum,
    /// `avg(x)`.
    Avg,
    /// `min(x)`.
    Min,
    /// `max(x)`.
    Max,
    /// `collect(x)`.
    Collect,
}

impl AggFunc {
    /// Map a lower-cased function name to an aggregation function.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "collect" => Some(AggFunc::Collect),
            _ => None,
        }
    }
}

impl Accumulator {
    /// Create an accumulator for a function, with or without `DISTINCT`.
    pub fn new(func: AggFunc, distinct: bool) -> Self {
        Accumulator {
            func,
            distinct,
            seen: Vec::new(),
            count: 0,
            sum: 0.0,
            int_sum: 0,
            all_ints: true,
            min: None,
            max: None,
            collected: Vec::new(),
        }
    }

    /// Feed one value. `Null` values are ignored by every aggregation, per
    /// openCypher; `count(*)` is handled by feeding a non-null marker.
    pub fn update(&mut self, value: Value) {
        self.update_weighted(value, 1);
    }

    /// Feed one value `weight` times at once — the algebraic form used by
    /// fused traversals, whose counting-semiring products deliver a path
    /// count per destination instead of that many identical records.
    /// `count` and `sum`/`avg` scale linearly (`count += w`, `sum += v·w`);
    /// `min`/`max` ignore duplicates; `collect` pushes `w` copies. With
    /// `DISTINCT` the weight collapses to a single observation, exactly as
    /// `w` identical expanded records would.
    pub fn update_weighted(&mut self, value: Value, weight: u64) {
        if value.is_null() || weight == 0 {
            return;
        }
        if self.distinct {
            if self.seen.iter().any(|v| v.cypher_eq(&value) == Some(true)) {
                return;
            }
            self.seen.push(value.clone());
        }
        let weight = if self.distinct { 1 } else { weight };
        self.count += weight;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                if let Value::Int(i) = value {
                    // i128 accumulation absorbs intermediate i64 overflow
                    // exactly; `finish` decides whether the total still fits.
                    // (checked_add only trips after ~2^63 extreme values —
                    // the f64 running sum then takes over.)
                    match (i as i128)
                        .checked_mul(weight as i128)
                        .and_then(|w| self.int_sum.checked_add(w))
                    {
                        Some(s) => self.int_sum = s,
                        None => self.all_ints = false,
                    }
                } else {
                    self.all_ints = false;
                }
                self.sum += value.as_f64().unwrap_or(0.0) * weight as f64;
            }
            AggFunc::Min => {
                let better = match &self.min {
                    None => true,
                    Some(cur) => value.sort_cmp(cur).is_lt(),
                };
                if better {
                    self.min = Some(value);
                }
            }
            AggFunc::Max => {
                let better = match &self.max {
                    None => true,
                    Some(cur) => value.sort_cmp(cur).is_gt(),
                };
                if better {
                    self.max = Some(value);
                }
            }
            AggFunc::Collect => {
                for _ in 0..weight {
                    self.collected.push(value.clone());
                }
            }
        }
    }

    /// Produce the final aggregated value.
    pub fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Int(0)
                } else if self.all_ints {
                    // Exact while the total fits; an out-of-range total
                    // promotes to float instead of silently wrapping.
                    match i64::try_from(self.int_sum) {
                        Ok(total) => Value::Int(total),
                        Err(_) => Value::Float(self.int_sum as f64),
                    }
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.unwrap_or(Value::Null),
            AggFunc::Max => self.max.unwrap_or(Value::Null),
            AggFunc::Collect => Value::List(self.collected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, distinct: bool, values: Vec<Value>) -> Value {
        let mut acc = Accumulator::new(func, distinct);
        for v in values {
            acc.update(v);
        }
        acc.finish()
    }

    #[test]
    fn count_ignores_nulls() {
        let v = run(AggFunc::Count, false, vec![Value::Int(1), Value::Null, Value::Int(2)]);
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn count_distinct() {
        let v = run(
            AggFunc::Count,
            true,
            vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Float(2.0)],
        );
        // 2.0 equals 2 under cypher equality, so only {1, 2} are distinct
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn sum_stays_integer_when_possible() {
        assert_eq!(run(AggFunc::Sum, false, vec![Value::Int(1), Value::Int(2)]), Value::Int(3));
        assert_eq!(
            run(AggFunc::Sum, false, vec![Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
        assert_eq!(run(AggFunc::Sum, false, vec![]), Value::Int(0));
    }

    #[test]
    fn sum_overflow_promotes_to_float_instead_of_wrapping() {
        // i64::MAX + 1 used to wrap to i64::MIN via `wrapping_add`.
        let v = run(AggFunc::Sum, false, vec![Value::Int(i64::MAX), Value::Int(1)]);
        assert_eq!(v, Value::Float(i64::MAX as f64 + 1.0));
        // Negative overflow too.
        let v = run(AggFunc::Sum, false, vec![Value::Int(i64::MIN), Value::Int(-1)]);
        assert_eq!(v, Value::Float(i64::MIN as f64 - 1.0));
        // Exactly at the boundary there is no overflow and the sum stays Int.
        let v = run(AggFunc::Sum, false, vec![Value::Int(i64::MAX - 1), Value::Int(1)]);
        assert_eq!(v, Value::Int(i64::MAX));
    }

    #[test]
    fn sum_is_exact_and_order_independent_across_intermediate_overflow() {
        // [MAX, 1, -2] overflows i64 mid-stream but the total fits: the
        // result must stay an exact Int, whatever the input order.
        let values = [i64::MAX, 1, -2];
        let expect = Value::Int(i64::MAX - 1);
        let orders: [[i64; 3]; 3] =
            [values, [values[2], values[0], values[1]], [values[1], values[2], values[0]]];
        for order in orders {
            let v = run(AggFunc::Sum, false, order.iter().map(|&i| Value::Int(i)).collect());
            assert_eq!(v, expect, "order {order:?}");
        }
    }

    #[test]
    fn avg_of_overflowing_ints_stays_finite() {
        let v = run(AggFunc::Avg, false, vec![Value::Int(i64::MAX), Value::Int(i64::MAX)]);
        assert_eq!(v, Value::Float(i64::MAX as f64));
    }

    #[test]
    fn avg_min_max() {
        assert_eq!(
            run(AggFunc::Avg, false, vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Float(2.0)
        );
        assert_eq!(run(AggFunc::Avg, false, vec![]), Value::Null);
        assert_eq!(
            run(AggFunc::Min, false, vec![Value::Int(5), Value::Int(2), Value::Int(8)]),
            Value::Int(2)
        );
        assert_eq!(
            run(AggFunc::Max, false, vec![Value::Str("a".into()), Value::Str("c".into())]),
            Value::Str("c".into())
        );
        assert_eq!(run(AggFunc::Min, false, vec![]), Value::Null);
    }

    #[test]
    fn collect_preserves_order() {
        let v = run(AggFunc::Collect, false, vec![Value::Int(3), Value::Null, Value::Int(1)]);
        assert_eq!(v, Value::List(vec![Value::Int(3), Value::Int(1)]));
    }

    #[test]
    fn from_name_lookup() {
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("collect"), Some(AggFunc::Collect));
        assert_eq!(AggFunc::from_name("id"), None);
    }
}
