//! The query execution engine.
//!
//! A parsed [`cypher::Query`] is compiled by [`plan::ExecutionPlan::build`]
//! into a linear sequence of operations (scans, traversals, filters,
//! projections, writes) that is then interpreted against a
//! [`crate::store::graph::Graph`]. Traversal operations read the graph's
//! sparse matrices — single hops walk matrix rows, variable-length hops run the
//! masked-`vxm` BFS in [`crate::store::graph::Graph::khop_reach`] — which is
//! exactly the "Cypher → linear algebra" translation the paper describes.
//!
//! The pipeline is *materialised*: each operation maps a vector of records to
//! a new vector of records. RedisGraph proper streams records through a
//! volcano-style iterator; materialisation keeps the reproduction simple
//! without changing the asymptotics of the benchmark queries, and each query
//! still executes on a single thread as the paper's architecture dictates.

pub mod aggregate;
pub mod algebraic;
pub mod expr;
pub mod ops;
pub mod plan;
pub mod procedures;
pub mod record;
pub mod resultset;
