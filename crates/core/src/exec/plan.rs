//! Execution-plan construction and evaluation.
//!
//! [`ExecutionPlan::build`] compiles a parsed [`cypher::Query`] into segments
//! of [`PlanOp`]s (segments are separated by `WITH`, which re-binds the record
//! layout). [`ExecutionPlan::execute`] interprets the plan against a graph.
//!
//! Plan construction mirrors RedisGraph's planner for the supported subset:
//!
//! * the first node of a `MATCH` pattern chooses its access path — `Node By Id
//!   Seek` when the `WHERE` clause pins `id(n)`, `Node By Label Scan` when the
//!   pattern has a label, otherwise `All Node Scan`;
//! * every relationship step becomes a `Conditional Traverse` (or `Expand
//!   Into` when both endpoints are already bound), executed against the
//!   graph's sparse matrices;
//! * inline property maps and label constraints on non-scan nodes become
//!   filters directly after the traverse that binds them.

use crate::error::QueryError;
use crate::exec::expr::contains_aggregate;
use crate::exec::ops::*;
use crate::exec::record::{Bindings, Record};
use crate::exec::resultset::{QueryStats, ResultSet};
use crate::store::graph::Graph;
use crate::value::Value;
use cypher::{Clause, Expr, NodePattern, PathPattern, Query};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Query parameters (`CYPHER name=value …`): name → constant expression.
/// Values are the literal / list-of-literal expressions the server parses
/// from the `CYPHER` header; [`ExecutionPlan::bind`] substitutes them for
/// `$name` references at plan-bind time — never by splicing query text.
pub type Params = HashMap<String, Expr>;

/// What one operator did during a profiled execution (`GRAPH.PROFILE`): the
/// operator's `describe()` line plus how many records it left in the
/// interpreter's working set and how long its invocation took. The executor
/// is a batch interpreter — each operator consumes the whole record vector
/// and produces the next one — so an operator's wall time is exactly the
/// span of its invocation; there is no child time to subtract.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// The operator's `GRAPH.EXPLAIN` line.
    pub description: String,
    /// Records in the working set after the operator ran.
    pub records_produced: usize,
    /// Wall time of the operator's invocation.
    pub elapsed: Duration,
    /// Index of the plan segment the operator belongs to (segments are
    /// separated by `WITH`; the formatter reinserts `--- segment ---`).
    pub segment: usize,
}

/// Render profiled operators as the annotated `GRAPH.EXPLAIN` tree
/// `GRAPH.PROFILE` returns: one line per operator, segment separators
/// preserved.
pub fn format_profile(profiles: &[OpProfile]) -> Vec<String> {
    let mut out = Vec::new();
    let mut segment = 0;
    for p in profiles {
        if p.segment != segment {
            out.push("--- segment ---".to_string());
            segment = p.segment;
        }
        out.push(format!(
            "{} | Records produced: {}, Execution time: {:.6} ms",
            p.description,
            p.records_produced,
            p.elapsed.as_secs_f64() * 1e3
        ));
    }
    out
}

/// One plan segment: a record layout plus the operations that run under it.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Variable → slot table for this segment.
    pub bindings: Bindings,
    /// Operations, in execution order.
    pub ops: Vec<PlanOp>,
}

/// A compiled query plan.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    segments: Vec<Segment>,
    /// Intra-query GraphBLAS thread budget (`QUERY_THREADS`), snapshotted
    /// from the process-wide [`graphblas::Context`] when the plan is built —
    /// i.e. at dispatch. A concurrent `GRAPH.CONFIG SET QUERY_THREADS`
    /// retunes *later* queries; a query that already started keeps the
    /// budget it was dispatched with, so its kernels never observe the knob
    /// moving mid-flight.
    thread_budget: usize,
}

impl ExecutionPlan {
    /// Compile a parsed query into an execution plan and run the algebraic
    /// optimizer over it (chain fusion, mask pushdown — see
    /// [`crate::exec::algebraic`]).
    pub fn build(query: &Query) -> Result<Self, QueryError> {
        let mut plan = Self::build_unoptimized(query)?;
        crate::exec::algebraic::fuse_plan(&mut plan.segments);
        Ok(plan)
    }

    /// Compile without the optimizer pass: one `Traverse` op per hop, label
    /// predicates as record filters. The differential suites compare this
    /// plan's output against the optimized plan's row for row.
    pub fn build_unoptimized(query: &Query) -> Result<Self, QueryError> {
        Builder::new().build(query)
    }

    /// Human-readable plan description (`GRAPH.EXPLAIN`).
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, segment) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push("--- segment ---".to_string());
            }
            for op in &segment.ops {
                out.push(op.describe());
            }
        }
        out
    }

    /// The segments of the plan (exposed for tests and the server module).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The intra-query thread budget this plan was dispatched with (the
    /// `QUERY_THREADS` value at build time).
    pub fn thread_budget(&self) -> usize {
        self.thread_budget
    }

    /// True if any expression in the plan references a `$parameter`. Plans
    /// without parameter references execute a cached skeleton directly;
    /// plans with them go through [`ExecutionPlan::bind`] first.
    pub fn has_params(&self) -> bool {
        let mut found = false;
        self.visit_exprs(&mut |expr| found |= expr_has_param(expr));
        found
    }

    /// Clone the plan with every `$name` reference replaced by its value
    /// from `params` — substitution happens on the plan's expressions, so a
    /// cached skeleton is never re-parsed or re-planned per execution, and
    /// parameter values can never be misread as query text. Errors if the
    /// plan references a parameter `params` does not supply.
    pub fn bind(&self, params: &Params) -> Result<ExecutionPlan, QueryError> {
        let mut plan = self.clone();
        let mut missing: Option<String> = None;
        plan.visit_exprs_mut(&mut |expr| substitute_params(expr, params, &mut missing));
        match missing {
            Some(name) => Err(QueryError::Type(format!("missing query parameter `${name}`"))),
            None => Ok(plan),
        }
    }

    /// Visit every expression embedded in the plan's operators.
    fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        for segment in &self.segments {
            for op in &segment.ops {
                match op {
                    PlanOp::NodeByIdSeek { id_expr, .. } => f(id_expr),
                    PlanOp::Filter { expr } => f(expr),
                    PlanOp::Unwind { list, .. } => f(list),
                    PlanOp::ProcedureCall { args, .. } => args.iter().for_each(&mut *f),
                    PlanOp::Project(p)
                    | PlanOp::With(p)
                    | PlanOp::Aggregate { projection: p, .. } => {
                        p.items.iter().for_each(|i| f(&i.expr));
                        p.order_by.iter().for_each(|(e, _)| f(e));
                    }
                    PlanOp::SetProps { items } => items.iter().for_each(|i| f(&i.value)),
                    _ => {}
                }
            }
        }
    }

    /// Mutable counterpart of [`ExecutionPlan::visit_exprs`].
    fn visit_exprs_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        for segment in &mut self.segments {
            for op in &mut segment.ops {
                match op {
                    PlanOp::NodeByIdSeek { id_expr, .. } => f(id_expr),
                    PlanOp::Filter { expr } => f(expr),
                    PlanOp::Unwind { list, .. } => f(list),
                    PlanOp::ProcedureCall { args, .. } => args.iter_mut().for_each(&mut *f),
                    PlanOp::Project(p)
                    | PlanOp::With(p)
                    | PlanOp::Aggregate { projection: p, .. } => {
                        p.items.iter_mut().for_each(|i| f(&mut i.expr));
                        p.order_by.iter_mut().for_each(|(e, _)| f(e));
                    }
                    PlanOp::SetProps { items } => items.iter_mut().for_each(|i| f(&mut i.value)),
                    _ => {}
                }
            }
        }
    }

    /// Execute the plan against a graph, producing a result set.
    pub fn execute(&self, graph: &mut Graph) -> Result<ResultSet, QueryError> {
        self.run(GraphAccess::Write(graph), Instant::now(), None)
    }

    /// Execute against a graph, timing the result set's statistics footer
    /// from `started` — the single `Instant` the server captures at dispatch,
    /// so the reported time covers parse/queue/execute without being
    /// re-measured per layer.
    pub fn execute_at(&self, graph: &mut Graph, started: Instant) -> Result<ResultSet, QueryError> {
        self.run(GraphAccess::Write(graph), started, None)
    }

    /// Execute a plan that contains no write operations against a shared graph
    /// reference. Used by the server's read path so that many read queries can
    /// run concurrently on different threadpool workers under a read lock.
    /// Returns an error if the plan contains a write operation.
    pub fn execute_read_only(&self, graph: &Graph) -> Result<ResultSet, QueryError> {
        self.run(GraphAccess::Read(graph), Instant::now(), None)
    }

    /// Read-only execution timed from a dispatch-captured `started` (see
    /// [`ExecutionPlan::execute_at`]).
    pub fn execute_read_only_at(
        &self,
        graph: &Graph,
        started: Instant,
    ) -> Result<ResultSet, QueryError> {
        self.run(GraphAccess::Read(graph), started, None)
    }

    /// Execute with per-operator instrumentation (`GRAPH.PROFILE`): every
    /// operator's records-produced count and wall time are collected
    /// alongside the ordinary result set. Write operators mutate the graph
    /// exactly as [`ExecutionPlan::execute`] would.
    pub fn profile(
        &self,
        graph: &mut Graph,
        started: Instant,
    ) -> Result<(ResultSet, Vec<OpProfile>), QueryError> {
        let mut profiles = Vec::new();
        let rs = self.run(GraphAccess::Write(graph), started, Some(&mut profiles))?;
        Ok((rs, profiles))
    }

    /// Read-only counterpart of [`ExecutionPlan::profile`].
    pub fn profile_read_only(
        &self,
        graph: &Graph,
        started: Instant,
    ) -> Result<(ResultSet, Vec<OpProfile>), QueryError> {
        let mut profiles = Vec::new();
        let rs = self.run(GraphAccess::Read(graph), started, Some(&mut profiles))?;
        Ok((rs, profiles))
    }

    /// True when executing the plan reads whole matrices *per record*
    /// (scalar variable-length traversals run the algebraic `khop_reach`,
    /// procedures hand the adjacency matrix to `algo::*`), where flushing
    /// once clearly beats merging per read. Single-hop traversals are
    /// deliberately excluded: the scalar strategy reads merged row views and
    /// the batched strategy materialises at most one merged `Cow` view per
    /// relation matrix per batch, so forcing a flush here would reintroduce
    /// the per-query sync cost the delta write path exists to avoid.
    /// `GraphSnapshot` consults this to decide whether a query runs on its
    /// pinned (possibly delta-dirty) graph or on its lazily folded twin.
    pub(crate) fn needs_matrix_views(&self) -> bool {
        self.segments.iter().flat_map(|s| &s.ops).any(|op| match op {
            PlanOp::Traverse { min_hops, max_hops, .. } => {
                !(*min_hops == 1 && *max_hops == Some(1))
            }
            PlanOp::ProcedureCall { .. } => true,
            _ => false,
        })
    }

    fn run(
        &self,
        mut access: GraphAccess<'_>,
        started: Instant,
        mut profiles: Option<&mut Vec<OpProfile>>,
    ) -> Result<ResultSet, QueryError> {
        // Read barrier for whole-matrix consumers: with exclusive access a
        // flush is cheap and lets `khop_reach` / procedures borrow the main
        // matrices once, instead of materialising a merged copy per record.
        // (The server's read-only path runs against a shared `GraphSnapshot`,
        // which routes whole-matrix plans to a lazily folded private twin;
        // single-hop traversals use merged row views and need no flush at
        // all.)
        if self.needs_matrix_views() {
            if let GraphAccess::Write(graph) = &mut access {
                graph.sync_matrices();
            }
        }
        let mut stats = QueryStats::default();
        let mut records: Vec<Record> = vec![Vec::new()];
        let mut columns: Vec<String> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();

        for (si, segment) in self.segments.iter().enumerate() {
            let bindings = &segment.bindings;
            for op in &segment.ops {
                // Per-op timing only when profiling: the 40k+-qps point-read
                // path pays nothing for the instrumentation's existence.
                let op_started = profiles.as_ref().map(|_| Instant::now());
                match op {
                    PlanOp::AllNodeScan { .. }
                    | PlanOp::NodeByLabelScan { .. }
                    | PlanOp::NodeByIdSeek { .. } => {
                        records = run_scan(op, records, bindings, access.graph());
                    }
                    PlanOp::Filter { .. }
                    | PlanOp::LabelFilter { .. }
                    | PlanOp::PropFilter { .. } => {
                        records = run_filter(op, records, bindings, access.graph());
                    }
                    PlanOp::Traverse {
                        src_slot,
                        dst_slot,
                        edge_slot,
                        rel_types,
                        direction,
                        min_hops,
                        max_hops,
                        expand_into,
                        ..
                    } => {
                        let spec = TraverseSpec {
                            src_slot: *src_slot,
                            dst_slot: *dst_slot,
                            edge_slot: *edge_slot,
                            rel_types,
                            direction: *direction,
                            min_hops: *min_hops,
                            max_hops: *max_hops,
                            expand_into: *expand_into,
                            nthreads: self.thread_budget,
                        };
                        records = run_traverse(records, bindings, access.graph(), &spec);
                    }
                    PlanOp::FusedTraverse { src_slot, dst_slot, expr, weight_slot, .. } => {
                        records = crate::exec::algebraic::run_fused(
                            &records,
                            bindings,
                            access.graph(),
                            *src_slot,
                            *dst_slot,
                            expr,
                            *weight_slot,
                            self.thread_budget,
                        );
                    }
                    PlanOp::Project(projection) => {
                        columns = projection.items.iter().map(|i| i.column_name()).collect();
                        rows = run_project(projection, &records, bindings, access.graph());
                    }
                    PlanOp::Aggregate { projection, weight_slot } => {
                        columns = projection.items.iter().map(|i| i.column_name()).collect();
                        rows = run_aggregate(
                            projection,
                            *weight_slot,
                            &records,
                            bindings,
                            access.graph(),
                        );
                    }
                    PlanOp::With(projection) => {
                        let agg = projection.items.iter().any(|i| contains_aggregate(&i.expr));
                        let produced = if agg {
                            run_aggregate(projection, None, &records, bindings, access.graph())
                        } else {
                            run_project(projection, &records, bindings, access.graph())
                        };
                        let next_bindings = &self.segments[si + 1].bindings;
                        records = produced
                            .into_iter()
                            .map(|row| {
                                let mut r = vec![Value::Null; next_bindings.len()];
                                for (item, value) in projection.items.iter().zip(row) {
                                    if let Some(slot) = next_bindings.slot(&item.column_name()) {
                                        r[slot] = value;
                                    }
                                }
                                r
                            })
                            .collect();
                    }
                    PlanOp::Create { patterns } => {
                        run_create(
                            patterns,
                            &mut records,
                            bindings,
                            access.graph_mut()?,
                            &mut stats,
                        );
                    }
                    PlanOp::Delete { vars, .. } => {
                        run_delete(vars, &records, bindings, access.graph_mut()?, &mut stats);
                    }
                    PlanOp::SetProps { items } => {
                        run_set(items, &records, bindings, access.graph_mut()?, &mut stats);
                    }
                    PlanOp::Unwind { list, slot, .. } => {
                        records = run_unwind(list, *slot, records, bindings, access.graph());
                    }
                    PlanOp::ProcedureCall { name, args, outputs } => {
                        records =
                            run_procedure(name, args, outputs, records, bindings, access.graph())?;
                    }
                }
                if let Some(profiles) = profiles.as_deref_mut() {
                    // Projections emit rows, every other operator leaves its
                    // output in the record working set.
                    let produced = match op {
                        PlanOp::Project(_) | PlanOp::Aggregate { .. } => rows.len(),
                        _ => records.len(),
                    };
                    profiles.push(OpProfile {
                        description: op.describe(),
                        records_produced: produced,
                        elapsed: op_started.expect("set when profiling").elapsed(),
                        segment: si,
                    });
                }
            }
        }
        // Write queries no longer resync matrices here: mutations append to
        // each DeltaMatrix's pending buffers and readers see the merged view.
        // Buffers fold into the main CSRs when a matrix crosses its flush
        // threshold, or at the read barriers above.
        stats.execution_time = started.elapsed();
        Ok(ResultSet { columns, rows, stats })
    }
}

/// How the executor is allowed to touch the graph: read-only plans can run
/// against a shared reference (many at once on different threadpool workers),
/// write plans need exclusive access.
enum GraphAccess<'a> {
    /// Shared, read-only access.
    Read(&'a Graph),
    /// Exclusive access, required by write operations.
    Write(&'a mut Graph),
}

impl<'a> GraphAccess<'a> {
    fn graph(&self) -> &Graph {
        match self {
            GraphAccess::Read(g) => g,
            GraphAccess::Write(g) => g,
        }
    }

    fn graph_mut(&mut self) -> Result<&mut Graph, QueryError> {
        match self {
            GraphAccess::Read(_) => Err(QueryError::Internal(
                "write operation reached the read-only execution path".into(),
            )),
            GraphAccess::Write(g) => Ok(g),
        }
    }
}

/// Internal plan builder state.
struct Builder {
    segments: Vec<Segment>,
    bindings: Bindings,
    ops: Vec<PlanOp>,
    anon_counter: usize,
}

impl Builder {
    fn new() -> Self {
        Builder {
            segments: Vec::new(),
            bindings: Bindings::new(),
            ops: Vec::new(),
            anon_counter: 0,
        }
    }

    fn anon_var(&mut self) -> String {
        self.anon_counter += 1;
        format!("@anon_{}", self.anon_counter)
    }

    fn finish_segment(&mut self) {
        let bindings = std::mem::take(&mut self.bindings);
        let ops = std::mem::take(&mut self.ops);
        self.segments.push(Segment { bindings, ops });
    }

    fn build(mut self, query: &Query) -> Result<ExecutionPlan, QueryError> {
        let id_seeks = collect_id_seeks(query);
        for clause in &query.clauses {
            match clause {
                Clause::Match { optional, patterns } => {
                    if *optional {
                        return Err(QueryError::Unsupported(
                            "OPTIONAL MATCH is not supported by this RedisGraph version".into(),
                        ));
                    }
                    for pattern in patterns {
                        self.plan_pattern(pattern, &id_seeks)?;
                    }
                }
                Clause::Where(expr) => {
                    self.ops.push(PlanOp::Filter { expr: expr.clone() });
                }
                Clause::Return(projection) => {
                    let agg = projection.items.iter().any(|i| contains_aggregate(&i.expr));
                    self.ops.push(if agg {
                        PlanOp::Aggregate { projection: projection.clone(), weight_slot: None }
                    } else {
                        PlanOp::Project(projection.clone())
                    });
                }
                Clause::With(projection) => {
                    self.ops.push(PlanOp::With(projection.clone()));
                    self.finish_segment();
                    // The next segment's variables are the projected column names.
                    for item in &projection.items {
                        self.bindings.slot_or_create(&item.column_name());
                    }
                }
                Clause::Create(patterns) => {
                    // Named entities introduced by CREATE get slots so later
                    // clauses (RETURN, SET) can reference them.
                    for pattern in patterns {
                        for node in pattern.nodes() {
                            if let Some(var) = &node.variable {
                                self.bindings.slot_or_create(var);
                            }
                        }
                        for (rel, _) in &pattern.steps {
                            if let Some(var) = &rel.variable {
                                self.bindings.slot_or_create(var);
                            }
                        }
                    }
                    self.ops.push(PlanOp::Create { patterns: patterns.clone() });
                }
                Clause::Delete { detach, variables } => {
                    for var in variables {
                        if !self.bindings.is_bound(var) {
                            return Err(QueryError::UnknownVariable(var.clone()));
                        }
                    }
                    self.ops.push(PlanOp::Delete { detach: *detach, vars: variables.clone() });
                }
                Clause::Set(items) => {
                    for item in items {
                        if !self.bindings.is_bound(&item.variable) {
                            return Err(QueryError::UnknownVariable(item.variable.clone()));
                        }
                    }
                    self.ops.push(PlanOp::SetProps { items: items.clone() });
                }
                Clause::Unwind { list, variable } => {
                    let slot = self.bindings.slot_or_create(variable);
                    self.ops.push(PlanOp::Unwind {
                        list: list.clone(),
                        slot,
                        var: variable.clone(),
                    });
                }
                Clause::Call { procedure, args, yields } => {
                    self.plan_call(procedure, args, yields)?;
                }
            }
        }
        self.finish_segment();
        // Snapshot `QUERY_THREADS` here, at build (= dispatch) time: the knob
        // is process-global, and reading it per kernel call would let a
        // concurrent `GRAPH.CONFIG SET` change a running query's parallelism.
        Ok(ExecutionPlan { segments: self.segments, thread_budget: graphblas::Context::nthreads() })
    }

    /// Plan a `CALL … YIELD` clause: resolve the procedure, validate arity and
    /// the yield list, and bind the yielded columns as ordinary variables.
    fn plan_call(
        &mut self,
        procedure: &str,
        args: &[Expr],
        yields: &[cypher::YieldItem],
    ) -> Result<(), QueryError> {
        let proc = crate::exec::procedures::find(procedure)
            .ok_or_else(|| QueryError::UnknownProcedure(procedure.to_string()))?;
        if args.len() < proc.min_args || args.len() > proc.max_args {
            return Err(QueryError::Type(format!(
                "procedure `{}` takes {} to {} arguments, got {}",
                proc.name,
                proc.min_args,
                proc.max_args,
                args.len()
            )));
        }
        // Yielded names must be fresh bindings (openCypher forbids YIELD from
        // shadowing an existing variable — rebinding would silently clobber
        // the earlier values).
        let bind_fresh = |bindings: &mut Bindings, name: &str| -> Result<usize, QueryError> {
            if bindings.is_bound(name) {
                return Err(QueryError::Type(format!(
                    "variable `{name}` already declared; YIELD names must be new (use `AS` to \
                     rename)"
                )));
            }
            Ok(bindings.slot_or_create(name))
        };
        // An empty YIELD list yields every output column under its own name.
        let outputs: Vec<(usize, usize)> = if yields.is_empty() {
            proc.yields
                .iter()
                .enumerate()
                .map(|(col, name)| Ok((col, bind_fresh(&mut self.bindings, name)?)))
                .collect::<Result<_, QueryError>>()?
        } else {
            yields
                .iter()
                .map(|item| {
                    let col =
                        proc.yields.iter().position(|c| *c == item.column).ok_or_else(|| {
                            QueryError::Type(format!(
                                "procedure `{}` does not yield `{}` (yields: {})",
                                proc.name,
                                item.column,
                                proc.yields.join(", ")
                            ))
                        })?;
                    Ok((col, bind_fresh(&mut self.bindings, item.binding_name())?))
                })
                .collect::<Result<_, QueryError>>()?
        };
        self.ops.push(PlanOp::ProcedureCall {
            name: proc.name.to_string(),
            args: args.to_vec(),
            outputs,
        });
        Ok(())
    }

    /// Plan one linear path pattern of a MATCH clause.
    fn plan_pattern(
        &mut self,
        pattern: &PathPattern,
        id_seeks: &HashMap<String, Expr>,
    ) -> Result<(), QueryError> {
        // Start node.
        let start_var = pattern.start.variable.clone().unwrap_or_else(|| self.anon_var());
        let start_bound = self.bindings.is_bound(&start_var);
        let start_slot = self.bindings.slot_or_create(&start_var);
        if !start_bound {
            self.plan_node_access(&pattern.start, &start_var, start_slot, id_seeks);
        } else {
            self.plan_node_constraints(&pattern.start, start_slot);
        }

        // Relationship steps.
        let mut src_slot = start_slot;
        for (rel, node) in &pattern.steps {
            let dst_var = node.variable.clone().unwrap_or_else(|| self.anon_var());
            let expand_into = self.bindings.is_bound(&dst_var);
            let dst_slot = self.bindings.slot_or_create(&dst_var);
            // An edge slot is needed when the edge is named or when inline
            // property constraints must be checked against it (single hop only).
            let edge_slot = if rel.var_length.is_none()
                && (rel.variable.is_some() || !rel.properties.is_empty())
            {
                let name = rel.variable.clone().unwrap_or_else(|| self.anon_var());
                Some(self.bindings.slot_or_create(&name))
            } else {
                None
            };
            let (min_hops, max_hops) = match rel.var_length {
                None => (1, Some(1)),
                Some((min, max)) => (min, max),
            };
            self.ops.push(PlanOp::Traverse {
                src_slot,
                dst_slot,
                dst_var: dst_var.clone(),
                edge_slot,
                rel_types: rel.types.clone(),
                direction: rel.direction,
                min_hops,
                max_hops,
                expand_into,
            });
            // Edge property constraints (single hop only).
            if let Some(es) = edge_slot {
                for (key, lit) in &rel.properties {
                    self.ops.push(PlanOp::PropFilter {
                        slot: es,
                        key: key.clone(),
                        value: Value::from(lit),
                    });
                }
            }
            // Destination constraints apply whether the traversal expands into
            // a fresh slot or re-checks an already-bound one.
            self.plan_node_constraints(node, dst_slot);
            src_slot = dst_slot;
        }
        Ok(())
    }

    /// Choose the access path for an unbound start node.
    fn plan_node_access(
        &mut self,
        node: &NodePattern,
        var: &str,
        slot: usize,
        id_seeks: &HashMap<String, Expr>,
    ) {
        if let Some(id_expr) = id_seeks.get(var) {
            self.ops.push(PlanOp::NodeByIdSeek {
                slot,
                var: var.to_string(),
                id_expr: id_expr.clone(),
            });
            // Remaining label/property constraints still apply.
            self.plan_node_constraints(node, slot);
            return;
        }
        if let Some(first_label) = node.labels.first() {
            self.ops.push(PlanOp::NodeByLabelScan {
                slot,
                var: var.to_string(),
                label: first_label.clone(),
            });
            for label in node.labels.iter().skip(1) {
                self.ops.push(PlanOp::LabelFilter { slot, label: label.clone() });
            }
        } else {
            self.ops.push(PlanOp::AllNodeScan { slot, var: var.to_string() });
        }
        for (key, lit) in &node.properties {
            self.ops.push(PlanOp::PropFilter { slot, key: key.clone(), value: Value::from(lit) });
        }
    }

    /// Emit label / property filters for a node that is bound by a traverse or
    /// by an earlier pattern.
    fn plan_node_constraints(&mut self, node: &NodePattern, slot: usize) {
        for label in &node.labels {
            self.ops.push(PlanOp::LabelFilter { slot, label: label.clone() });
        }
        for (key, lit) in &node.properties {
            self.ops.push(PlanOp::PropFilter { slot, key: key.clone(), value: Value::from(lit) });
        }
    }
}

/// Scan the WHERE clauses for `id(var) = <expr>` conjuncts usable as
/// `Node By Id Seek` access paths.
fn collect_id_seeks(query: &Query) -> HashMap<String, Expr> {
    let mut seeks = HashMap::new();
    for clause in &query.clauses {
        if let Clause::Where(expr) = clause {
            collect_id_seeks_expr(expr, &mut seeks);
        }
    }
    seeks
}

fn collect_id_seeks_expr(expr: &Expr, seeks: &mut HashMap<String, Expr>) {
    match expr {
        Expr::Binary(cypher::BinaryOperator::And, lhs, rhs) => {
            collect_id_seeks_expr(lhs, seeks);
            collect_id_seeks_expr(rhs, seeks);
        }
        Expr::Binary(cypher::BinaryOperator::Eq, lhs, rhs) => {
            if let Some((var, value)) = match_id_eq(lhs, rhs).or_else(|| match_id_eq(rhs, lhs)) {
                seeks.insert(var, value);
            }
        }
        _ => {}
    }
}

/// True if `expr` contains a `$parameter` reference anywhere.
fn expr_has_param(expr: &Expr) -> bool {
    match expr {
        Expr::Parameter(_) => true,
        Expr::Unary(_, inner) => expr_has_param(inner),
        Expr::Binary(_, lhs, rhs) => expr_has_param(lhs) || expr_has_param(rhs),
        Expr::FunctionCall { args, .. } => args.iter().any(expr_has_param),
        Expr::List(items) => items.iter().any(expr_has_param),
        Expr::Literal(_) | Expr::Variable(_) | Expr::Property(_, _) => false,
    }
}

/// Replace every `$name` in `expr` with its value from `params`, recording
/// the first missing name in `missing`.
fn substitute_params(expr: &mut Expr, params: &Params, missing: &mut Option<String>) {
    match expr {
        Expr::Parameter(name) => match params.get(name.as_str()) {
            Some(value) => *expr = value.clone(),
            None => {
                if missing.is_none() {
                    *missing = Some(name.clone());
                }
            }
        },
        Expr::Unary(_, inner) => substitute_params(inner, params, missing),
        Expr::Binary(_, lhs, rhs) => {
            substitute_params(lhs, params, missing);
            substitute_params(rhs, params, missing);
        }
        Expr::FunctionCall { args, .. } => {
            args.iter_mut().for_each(|a| substitute_params(a, params, missing))
        }
        Expr::List(items) => items.iter_mut().for_each(|i| substitute_params(i, params, missing)),
        Expr::Literal(_) | Expr::Variable(_) | Expr::Property(_, _) => {}
    }
}

fn match_id_eq(call: &Expr, value: &Expr) -> Option<(String, Expr)> {
    if let Expr::FunctionCall { name, args, .. } = call {
        if name == "id" && args.len() == 1 {
            if let Expr::Variable(var) = &args[0] {
                if matches!(value, Expr::Literal(_) | Expr::Parameter(_)) {
                    return Some((var.clone(), value.clone()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(q: &str) -> ExecutionPlan {
        ExecutionPlan::build(&cypher::parse(q).unwrap()).unwrap()
    }

    #[test]
    fn label_scan_chosen_when_label_present() {
        let p = plan("MATCH (a:Person) RETURN a");
        let text = p.describe().join("\n");
        assert!(text.contains("Node By Label Scan"));
        assert!(!text.contains("All Node Scan"));
    }

    #[test]
    fn all_node_scan_when_no_label() {
        let p = plan("MATCH (a) RETURN a");
        assert!(p.describe().join("\n").contains("All Node Scan"));
    }

    #[test]
    fn id_seek_chosen_when_where_pins_id() {
        let p = plan("MATCH (s:Node)-[*1..2]->(t) WHERE id(s) = 5 RETURN count(t)");
        let text = p.describe().join("\n");
        assert!(text.contains("Node By Id Seek"), "plan was:\n{text}");
        assert!(text.contains("Conditional Traverse"));
        assert!(text.contains("Aggregate"));
    }

    #[test]
    fn expand_into_when_destination_already_bound() {
        let p = plan("MATCH (a:Person)-[:KNOWS]->(b:Person), (a)-[:LIKES]->(b) RETURN a");
        let text = p.describe().join("\n");
        assert!(text.contains("Expand Into"), "plan was:\n{text}");
    }

    #[test]
    fn with_splits_segments() {
        let p = plan("MATCH (a:Person) WITH a.name AS n RETURN n");
        assert_eq!(p.segments().len(), 2);
        assert!(p.describe().join("\n").contains("--- segment ---"));
    }

    #[test]
    fn unknown_variable_in_delete_is_an_error() {
        let err = ExecutionPlan::build(&cypher::parse("MATCH (a) DELETE b").unwrap()).unwrap_err();
        assert!(matches!(err, QueryError::UnknownVariable(v) if v == "b"));
    }

    #[test]
    fn plan_snapshots_query_threads_at_build_time() {
        // The only core test that writes the process-wide context (the knob
        // only tunes parallelism degree, never results, so concurrent readers
        // in other tests are unaffected).
        graphblas::Context::set_nthreads(2);
        let p = plan("MATCH (s)-[*1..2]->(t) RETURN count(t)");
        assert_eq!(p.thread_budget(), 2);
        graphblas::Context::set_nthreads(7);
        assert_eq!(
            p.thread_budget(),
            2,
            "a runtime QUERY_THREADS change must not retune an already-built plan"
        );
        let fresh = plan("MATCH (s)-[*1..2]->(t) RETURN count(t)");
        assert_eq!(fresh.thread_budget(), 7, "later dispatches pick up the new value");
        graphblas::Context::set_nthreads(1);
    }

    #[test]
    fn bind_substitutes_parameters_at_plan_level() {
        let p = plan("MATCH (s)-[:L]->(t) WHERE id(s) = $src AND t.name = $name RETURN t");
        assert!(p.has_params());
        let params: Params = [
            ("src".to_string(), Expr::Literal(cypher::Literal::Integer(3))),
            ("name".to_string(), Expr::Literal(cypher::Literal::Str("x".into()))),
        ]
        .into_iter()
        .collect();
        let bound = p.bind(&params).unwrap();
        assert!(!bound.has_params(), "all $refs must be substituted");
        // The skeleton itself is untouched: it can be re-bound with other values.
        assert!(p.has_params());
    }

    #[test]
    fn bind_errors_on_missing_parameter() {
        let p = plan("MATCH (s) WHERE id(s) = $src RETURN s");
        let err = p.bind(&Params::new()).unwrap_err();
        assert!(matches!(&err, QueryError::Type(m) if m.contains("$src")), "{err}");
    }

    #[test]
    fn params_reach_every_expression_position() {
        // UNWIND list, projection item, ORDER BY key, and SET value.
        let p = plan("UNWIND $xs AS x RETURN x + $inc AS y ORDER BY $inc");
        assert!(p.has_params());
        let params: Params = [
            (
                "xs".to_string(),
                Expr::List(vec![
                    Expr::Literal(cypher::Literal::Integer(1)),
                    Expr::Literal(cypher::Literal::Integer(2)),
                ]),
            ),
            ("inc".to_string(), Expr::Literal(cypher::Literal::Integer(10))),
        ]
        .into_iter()
        .collect();
        assert!(!p.bind(&params).unwrap().has_params());

        let p = plan("MATCH (a) SET a.v = $v");
        assert!(p.has_params());
        let params: Params =
            [("v".to_string(), Expr::Literal(cypher::Literal::Integer(1)))].into_iter().collect();
        assert!(!p.bind(&params).unwrap().has_params());
    }

    #[test]
    fn optional_match_is_rejected() {
        let err = ExecutionPlan::build(&cypher::parse("OPTIONAL MATCH (a) RETURN a").unwrap())
            .unwrap_err();
        assert!(matches!(err, QueryError::Unsupported(_)));
    }
}
