//! The matrix-backed property graph object — RedisGraph's `Graph` struct.
//!
//! Layout (exactly as described in the paper and the RedisGraph architecture
//! docs):
//!
//! * one **boolean adjacency matrix** `ADJ` holding the union of all edges,
//!   plus its transpose for reverse traversals;
//! * one **relation matrix per relationship type** whose stored values are
//!   edge ids (so traversals can recover the traversed edge entity);
//! * one **boolean label matrix per label** with a diagonal entry for every
//!   node carrying that label;
//! * node and edge entities (labels + property sets) in DataBlocks; the
//!   DataBlock slot index *is* the matrix row/column index.
//!
//! All matrices share one dimension, grown in chunks as nodes are added.
//!
//! Every matrix is a [`DeltaMatrix`]: mutations append to per-matrix
//! pending-insert/pending-delete buffers in O(log pending) instead of
//! rebuilding CSR structures, and the transposed matrices are maintained
//! incrementally (an edge insert buffers `(dst, src)` into the transpose)
//! rather than recomputed from scratch after every write query. Readers see
//! the merged `main ∪ Δ⁺ \ Δ⁻` view; whole-matrix consumers (`khop_reach`,
//! the `algo.*` procedures) borrow the main matrix when nothing is pending
//! and materialise a merged copy otherwise, so a `&Graph` read never blocks
//! on a flush. Buffers are folded into the main matrices when a matrix's
//! pending count crosses [`Graph::flush_threshold`] (the
//! `DELTA_MAX_PENDING_CHANGES` knob), or explicitly via
//! [`Graph::sync_matrices`].
//!
//! Every flushed main CSR is an immutable, `Arc`-shared **epoch**:
//! [`Graph::snapshot`] pins each matrix's current epoch — plus the bounded
//! delta buffers and the `Arc`-shared entity blocks — into a
//! [`GraphSnapshot`] that concurrent readers query without holding any lock,
//! while writers publish new epochs copy-on-write. A pinned epoch is freed
//! when its last snapshot drops.

use crate::error::QueryError;
use crate::exec::ops::TraverseStrategy;
use crate::exec::plan::{ExecutionPlan, OpProfile};
use crate::exec::resultset::ResultSet;
use crate::store::datablock::DataBlock;
use crate::store::entity::{AttributeSet, EdgeEntity, NodeEntity};
use crate::store::schema::{LabelId, RelTypeId, Schema};
use crate::value::Value;
use crate::{EdgeId, NodeId};
use graphblas::prelude::*;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

/// Matrices are grown in chunks of this many rows/columns so that node
/// insertion does not resize on every call (RedisGraph uses 16384).
const GROW_CHUNK: u64 = 16_384;

/// Traversal direction at the storage level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraverseDir {
    /// Follow edges from source to destination.
    Outgoing,
    /// Follow edges backwards.
    Incoming,
    /// Follow edges in both directions.
    Both,
}

/// A property graph stored as GraphBLAS sparse matrices.
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    /// Label / relationship type / attribute registries.
    pub schema: Schema,
    nodes: DataBlock<NodeEntity>,
    edges: DataBlock<EdgeEntity>,
    dim: u64,
    adjacency: DeltaMatrix<bool>,
    adjacency_t: DeltaMatrix<bool>,
    relation_matrices: Vec<DeltaMatrix<u64>>,
    relation_matrices_t: Vec<DeltaMatrix<u64>>,
    /// Parallel same-type edges: the full, ascending edge-id list of every
    /// `(rel, src, dst)` cell that holds **two or more** edges. The relation
    /// matrix cell keeps the smallest id (so algebraic products always carry
    /// a live representative); traversals expand a cell to one row per edge
    /// through [`Graph::edges_between`]. Cells with a single edge — the
    /// overwhelming majority — have no entry here.
    multi_edges: HashMap<(RelTypeId, NodeId, NodeId), Vec<EdgeId>>,
    label_matrices: Vec<DeltaMatrix<bool>>,
    flush_threshold: usize,
    traverse_strategy: TraverseStrategy,
    /// Run the algebraic optimizer (chain fusion, mask pushdown) when
    /// building plans. On by default; the differential suites pin it off to
    /// compare optimized against unoptimized plans.
    optimize: bool,
    /// Logical write version: bumped on every mutation, pinned by snapshots.
    epoch: u64,
    /// Per-instance memo of [`Graph::relation_count_matrix`] results, keyed
    /// by `(rel, transposed)` and valid for a single epoch. Fused algebraic
    /// plans consume whole counting matrices; rebuilding them from the view
    /// triples on every query made selective fused queries slower than the
    /// per-hop plans they replaced.
    count_cache: CountMatrixCache,
}

/// Epoch-scoped counting-matrix memo behind interior mutability, so sealed
/// read-only snapshots (`&Graph`) populate it too. `Clone` yields an *empty*
/// cache: a clone is either a mutable twin (whose epoch will diverge) or a
/// snapshot (which rebuilds from its own pinned matrices on first use) —
/// sharing entries across instances would only invite cross-epoch mixups.
#[derive(Debug, Default)]
struct CountMatrixCache {
    inner: parking_lot::Mutex<(u64, CountMatrixMap)>,
}

/// Memoised counting matrices, keyed by `(rel, transposed)`.
type CountMatrixMap = HashMap<(RelTypeId, bool), Arc<SparseMatrix<u64>>>;

impl Clone for CountMatrixCache {
    fn clone(&self) -> Self {
        CountMatrixCache::default()
    }
}

impl Graph {
    /// Create an empty graph with the given key name (the Redis key it would
    /// live under).
    pub fn new(name: &str) -> Self {
        Graph {
            name: name.to_string(),
            schema: Schema::new(),
            nodes: DataBlock::new(),
            edges: DataBlock::new(),
            dim: GROW_CHUNK,
            adjacency: DeltaMatrix::new(GROW_CHUNK, GROW_CHUNK),
            adjacency_t: DeltaMatrix::new(GROW_CHUNK, GROW_CHUNK),
            relation_matrices: Vec::new(),
            relation_matrices_t: Vec::new(),
            multi_edges: HashMap::new(),
            label_matrices: Vec::new(),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            traverse_strategy: TraverseStrategy::Auto,
            optimize: true,
            epoch: 0,
            count_cache: CountMatrixCache::default(),
        }
    }

    /// The logical write version of the graph: incremented by every mutation
    /// (not by flushes, which reorganise without changing contents). A
    /// [`GraphSnapshot`] observes the single epoch it was taken at, forever.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pin the current state as an immutable snapshot.
    ///
    /// The underlying clone is cheap and structural: each matrix's flushed
    /// CSR is shared by `Arc` (see `DeltaMatrix::main_shared`), entity
    /// DataBlocks share their blocks by `Arc`, and only the delta buffers —
    /// bounded by the flush threshold — and the schema registries are
    /// copied. Pending deltas are deliberately *not* folded: a fold rebuilds
    /// whole CSRs (O(nnz) however few changes are buffered), which point
    /// reads never need — they run on merged row views. Plans that do
    /// consume whole matrices fold a private twin of the snapshot once, on
    /// first demand (see [`GraphSnapshot`]).
    ///
    /// Later writes to this graph copy-on-write around the snapshot, so
    /// reading from it never takes a lock and never observes a concurrent
    /// writer.
    ///
    /// A caller holding a lock on this graph can split the two steps —
    /// `self.clone()` under the lock, [`GraphSnapshot::seal`] outside it —
    /// which is what the server's per-epoch snapshot cache does.
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot::seal(self.clone())
    }

    /// How `Conditional Traverse` / `Expand Into` operators execute against
    /// this graph (see [`TraverseStrategy`]). `Auto` batches once enough
    /// records flow through a traversal; benchmarks and differential tests
    /// pin `Scalar` / `Batched` explicitly.
    pub fn traverse_strategy(&self) -> TraverseStrategy {
        self.traverse_strategy
    }

    /// Set the traversal execution strategy.
    pub fn set_traverse_strategy(&mut self, strategy: TraverseStrategy) {
        self.traverse_strategy = strategy;
    }

    /// Whether plans built against this graph run the algebraic optimizer
    /// (chain fusion, mask pushdown — see [`crate::exec::algebraic`]).
    pub fn optimizer_enabled(&self) -> bool {
        self.optimize
    }

    /// Enable or disable the algebraic optimizer. Differential tests pin it
    /// off to compare the fused and unfused plans of the same query.
    pub fn set_optimizer(&mut self, on: bool) {
        self.optimize = on;
    }

    /// Build a plan honouring this graph's optimizer setting. Public so the
    /// server can build cacheable plan skeletons once and execute them many
    /// times (binding parameters per execution).
    pub fn build_plan(&self, ast: &cypher::Query) -> Result<ExecutionPlan, QueryError> {
        if self.optimize {
            ExecutionPlan::build(ast)
        } else {
            ExecutionPlan::build_unoptimized(ast)
        }
    }

    /// The pending-count threshold at which any one matrix folds its delta
    /// buffers into its main CSR (the `DELTA_MAX_PENDING_CHANGES` knob).
    pub fn flush_threshold(&self) -> usize {
        self.flush_threshold
    }

    /// Set the delta flush threshold on every matrix (existing and future).
    /// `1` restores the eager behaviour of flushing on every mutation.
    pub fn set_flush_threshold(&mut self, threshold: usize) {
        self.flush_threshold = threshold.max(1);
        self.adjacency.set_flush_threshold(self.flush_threshold);
        self.adjacency_t.set_flush_threshold(self.flush_threshold);
        for m in &mut self.relation_matrices {
            m.set_flush_threshold(self.flush_threshold);
        }
        for m in &mut self.relation_matrices_t {
            m.set_flush_threshold(self.flush_threshold);
        }
        for m in &mut self.label_matrices {
            m.set_flush_threshold(self.flush_threshold);
        }
    }

    /// A delta matrix sized and tuned for this graph.
    fn new_matrix<T: Scalar>(&self) -> DeltaMatrix<T> {
        let mut m = DeltaMatrix::new(self.dim, self.dim);
        m.set_flush_threshold(self.flush_threshold);
        m
    }

    /// True when any matrix has buffered changes awaiting a flush.
    pub fn has_pending_deltas(&self) -> bool {
        self.pending_delta_count() > 0
    }

    /// Total buffered changes across every matrix.
    pub fn pending_delta_count(&self) -> usize {
        self.adjacency.pending_count()
            + self.adjacency_t.pending_count()
            + self.relation_matrices.iter().map(DeltaMatrix::pending_count).sum::<usize>()
            + self.relation_matrices_t.iter().map(DeltaMatrix::pending_count).sum::<usize>()
            + self.label_matrices.iter().map(DeltaMatrix::pending_count).sum::<usize>()
    }

    /// Total delta-buffer folds performed across every matrix over the
    /// graph's lifetime (`GRAPH.INFO`'s `delta_flushes`).
    pub fn delta_flush_count(&self) -> u64 {
        self.adjacency.flush_count()
            + self.adjacency_t.flush_count()
            + self.relation_matrices.iter().map(DeltaMatrix::flush_count).sum::<u64>()
            + self.relation_matrices_t.iter().map(DeltaMatrix::flush_count).sum::<u64>()
            + self.label_matrices.iter().map(DeltaMatrix::flush_count).sum::<u64>()
    }

    /// The graph's key name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Current matrix dimension (≥ the highest node id ever created).
    pub fn dim(&self) -> u64 {
        self.dim
    }

    // ------------------------------------------------------------- queries

    /// Parse, plan and execute an openCypher query against this graph.
    pub fn query(&mut self, text: &str) -> Result<ResultSet, QueryError> {
        let ast = cypher::parse(text)?;
        self.query_ast(&ast)
    }

    /// Plan and execute an already-parsed query. The server parses once at
    /// dispatch (to classify read vs write and reject syntax errors without
    /// touching any lock) and passes the AST through here.
    pub fn query_ast(&mut self, ast: &cypher::Query) -> Result<ResultSet, QueryError> {
        self.query_ast_at(ast, std::time::Instant::now())
    }

    /// Like [`Graph::query_ast`], with the statistics footer timed from
    /// `started` — the one `Instant` the server captures at dispatch, so the
    /// reported time spans parse, queueing, and execution consistently.
    pub fn query_ast_at(
        &mut self,
        ast: &cypher::Query,
        started: std::time::Instant,
    ) -> Result<ResultSet, QueryError> {
        let plan = self.build_plan(ast)?;
        plan.execute_at(self, started)
    }

    /// Execute with per-operator instrumentation (`GRAPH.PROFILE`): returns
    /// the result set plus one [`OpProfile`] per executed operator. Write
    /// clauses mutate the graph exactly as [`Graph::query_ast`] would.
    pub fn profile_ast_at(
        &mut self,
        ast: &cypher::Query,
        started: std::time::Instant,
    ) -> Result<(ResultSet, Vec<OpProfile>), QueryError> {
        let plan = self.build_plan(ast)?;
        plan.profile(self, started)
    }

    /// Parse and profile a query (test/REPL convenience over
    /// [`Graph::profile_ast_at`]).
    pub fn profile(&mut self, text: &str) -> Result<(ResultSet, Vec<OpProfile>), QueryError> {
        let ast = cypher::parse(text)?;
        self.profile_ast_at(&ast, std::time::Instant::now())
    }

    /// Parse, plan and execute a **read-only** query through a shared
    /// reference. Errors if the query contains write clauses. Concurrent
    /// readers go through [`Graph::snapshot`] instead and never block.
    pub fn query_readonly(&self, text: &str) -> Result<ResultSet, QueryError> {
        let ast = cypher::parse(text)?;
        self.query_readonly_ast(&ast)
    }

    /// Plan and execute an already-parsed read-only query (see
    /// [`Graph::query_ast`]).
    pub fn query_readonly_ast(&self, ast: &cypher::Query) -> Result<ResultSet, QueryError> {
        let plan = self.build_plan(ast)?;
        plan.execute_read_only(self)
    }

    /// Build the execution plan for a query without running it
    /// (`GRAPH.EXPLAIN`).
    pub fn explain(&self, text: &str) -> Result<Vec<String>, QueryError> {
        let ast = cypher::parse(text)?;
        let plan = self.build_plan(&ast)?;
        Ok(plan.describe())
    }

    // ------------------------------------------------------------ mutation

    fn ensure_dim(&mut self, needed: u64) {
        if needed < self.dim {
            return;
        }
        let new_dim = ((needed / GROW_CHUNK) + 1) * GROW_CHUNK;
        self.adjacency.resize(new_dim, new_dim);
        self.adjacency_t.resize(new_dim, new_dim);
        for m in &mut self.relation_matrices {
            m.resize(new_dim, new_dim);
        }
        for m in &mut self.relation_matrices_t {
            m.resize(new_dim, new_dim);
        }
        for m in &mut self.label_matrices {
            m.resize(new_dim, new_dim);
        }
        self.dim = new_dim;
    }

    /// Get or create a label id, creating its label matrix on first use.
    pub fn label_id_or_create(&mut self, name: &str) -> LabelId {
        let id = self.schema.label_id_or_create(name);
        while self.label_matrices.len() <= id {
            self.label_matrices.push(self.new_matrix());
        }
        id
    }

    /// Get or create a relationship type id, creating its matrices on first use.
    pub fn rel_type_id_or_create(&mut self, name: &str) -> RelTypeId {
        let id = self.schema.rel_type_id_or_create(name);
        while self.relation_matrices.len() <= id {
            self.relation_matrices.push(self.new_matrix());
            self.relation_matrices_t.push(self.new_matrix());
        }
        id
    }

    /// Create a node with labels and properties; returns its id.
    pub fn add_node(&mut self, labels: &[&str], props: Vec<(&str, Value)>) -> NodeId {
        let label_ids: Vec<LabelId> = labels.iter().map(|l| self.label_id_or_create(l)).collect();
        let mut attrs = AttributeSet::new();
        for (key, value) in props {
            let attr = self.schema.attribute_id_or_create(key);
            attrs.set(attr, value);
        }
        let id = self.nodes.insert(NodeEntity { labels: label_ids.clone(), attributes: attrs });
        self.ensure_dim(id + 1);
        for label in label_ids {
            self.label_matrices[label].set_element(id, id, true);
        }
        self.epoch += 1;
        id
    }

    /// Create an edge of the given relationship type; returns its id.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        rel_type: &str,
        props: Vec<(&str, Value)>,
    ) -> Result<EdgeId, QueryError> {
        if !self.nodes.contains(src) {
            return Err(QueryError::Internal(format!("source node {src} does not exist")));
        }
        if !self.nodes.contains(dst) {
            return Err(QueryError::Internal(format!("destination node {dst} does not exist")));
        }
        let rel = self.rel_type_id_or_create(rel_type);
        let mut attrs = AttributeSet::new();
        for (key, value) in props {
            let attr = self.schema.attribute_id_or_create(key);
            attrs.set(attr, value);
        }
        let id = self.edges.insert(EdgeEntity { src, dst, rel_type: rel, attributes: attrs });
        match self.relation_matrices[rel].extract_element(src, dst) {
            // First edge of this type between the endpoints: the matrix cell
            // carries it directly.
            None => {
                self.relation_matrices[rel].set_element(src, dst, id);
                self.relation_matrices_t[rel].set_element(dst, src, id);
            }
            // Parallel same-type edge: the cell's full edge list moves to the
            // multi-edge side table (ascending ids) and the matrix keeps the
            // smallest id as the representative.
            Some(existing) => {
                let list =
                    self.multi_edges.entry((rel, src, dst)).or_insert_with(|| vec![existing]);
                let pos = list.binary_search(&id).unwrap_err();
                list.insert(pos, id);
                let smallest = list[0];
                if smallest != existing {
                    self.relation_matrices[rel].set_element(src, dst, smallest);
                    self.relation_matrices_t[rel].set_element(dst, src, smallest);
                }
            }
        }
        self.adjacency.set_element(src, dst, true);
        self.adjacency_t.set_element(dst, src, true);
        self.epoch += 1;
        Ok(id)
    }

    /// Delete an edge by id.
    pub fn delete_edge(&mut self, id: EdgeId) -> bool {
        let Some(edge) = self.edges.remove(id) else { return false };
        let key = (edge.rel_type, edge.src, edge.dst);
        match self.multi_edges.get_mut(&key) {
            // Parallel same-type edges survive: drop the id from the cell's
            // edge list, keep the matrix cell pointed at the smallest
            // survivor, and dissolve the side-table entry once a single edge
            // remains.
            Some(list) => {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                }
                let smallest = list[0];
                if list.len() == 1 {
                    self.multi_edges.remove(&key);
                }
                if self.relation_matrices[edge.rel_type].extract_element(edge.src, edge.dst)
                    != Some(smallest)
                {
                    self.relation_matrices[edge.rel_type].set_element(edge.src, edge.dst, smallest);
                    self.relation_matrices_t[edge.rel_type]
                        .set_element(edge.dst, edge.src, smallest);
                }
            }
            None => {
                self.relation_matrices[edge.rel_type]
                    .remove_element(edge.src, edge.dst)
                    .expect("in-bounds");
                self.relation_matrices_t[edge.rel_type]
                    .remove_element(edge.dst, edge.src)
                    .expect("in-bounds");
            }
        }
        // The combined adjacency drops the cell only when no type still
        // connects the endpoints (point reads on the per-type matrices, not
        // an O(edges) entity scan).
        let any_edge_left = self.relation_matrices.iter().any(|m| m.contains(edge.src, edge.dst));
        if !any_edge_left {
            self.adjacency.remove_element(edge.src, edge.dst).expect("in-bounds");
            self.adjacency_t.remove_element(edge.dst, edge.src).expect("in-bounds");
        }
        self.epoch += 1;
        true
    }

    /// Delete a node and all edges incident to it.
    pub fn delete_node(&mut self, id: NodeId) -> bool {
        if !self.nodes.contains(id) {
            return false;
        }
        let incident: Vec<EdgeId> = self
            .edges
            .iter()
            .filter(|(_, e)| e.src == id || e.dst == id)
            .map(|(eid, _)| eid)
            .collect();
        for eid in incident {
            self.delete_edge(eid);
        }
        let node = self.nodes.remove(id).expect("checked above");
        for label in node.labels {
            self.label_matrices[label].remove_element(id, id).expect("in-bounds");
        }
        self.epoch += 1;
        true
    }

    /// Fold every matrix's pending buffers into its main CSR so subsequent
    /// whole-matrix reads borrow instead of merging. Correctness never
    /// requires this — merged views stay consistent without it — it is a
    /// performance lever: the write path calls it before whole-matrix plans,
    /// snapshots fold their private copies the same way, and tests use it to
    /// pin state. Each non-trivial fold publishes a new epoch per matrix.
    pub fn sync_matrices(&mut self) {
        self.adjacency.flush();
        self.adjacency_t.flush();
        for m in &mut self.relation_matrices {
            m.flush();
        }
        for m in &mut self.relation_matrices_t {
            m.flush();
        }
        for m in &mut self.label_matrices {
            m.flush();
        }
    }

    // ------------------------------------------------------------- readers

    /// Node entity by id.
    pub fn node(&self, id: NodeId) -> Option<&NodeEntity> {
        self.nodes.get(id)
    }

    /// Edge entity by id.
    pub fn edge(&self, id: EdgeId) -> Option<&EdgeEntity> {
        self.edges.get(id)
    }

    /// Read a node property by name (`Null` when absent).
    pub fn node_property(&self, id: NodeId, key: &str) -> Value {
        let Some(attr) = self.schema.attribute_id(key) else { return Value::Null };
        self.nodes.get(id).map(|n| n.attributes.get(attr)).unwrap_or(Value::Null)
    }

    /// Read an edge property by name.
    pub fn edge_property(&self, id: EdgeId, key: &str) -> Value {
        let Some(attr) = self.schema.attribute_id(key) else { return Value::Null };
        self.edges.get(id).map(|e| e.attributes.get(attr)).unwrap_or(Value::Null)
    }

    /// Set a node property; returns false if the node does not exist.
    pub fn set_node_property(&mut self, id: NodeId, key: &str, value: Value) -> bool {
        let attr = self.schema.attribute_id_or_create(key);
        match self.nodes.get_mut(id) {
            Some(n) => {
                n.attributes.set(attr, value);
                self.epoch += 1;
                true
            }
            None => false,
        }
    }

    /// Set an edge property; returns false if the edge does not exist.
    pub fn set_edge_property(&mut self, id: EdgeId, key: &str, value: Value) -> bool {
        let attr = self.schema.attribute_id_or_create(key);
        match self.edges.get_mut(id) {
            Some(e) => {
                e.attributes.set(attr, value);
                self.epoch += 1;
                true
            }
            None => false,
        }
    }

    /// All live node ids.
    pub fn all_node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|(id, _)| id).collect()
    }

    /// Ids of nodes carrying the given label (by name). Unknown label → empty.
    pub fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        let Some(id) = self.schema.label_id(label) else { return Vec::new() };
        self.label_matrices[id].iter().map(|(r, _, _)| r).collect()
    }

    /// Whether the node carries the label (by name).
    pub fn node_has_label(&self, node: NodeId, label: &str) -> bool {
        match self.schema.label_id(label) {
            Some(id) => self.nodes.get(node).map(|n| n.has_label(id)).unwrap_or(false),
            None => false,
        }
    }

    /// The combined boolean adjacency matrix: a zero-cost borrow of the main
    /// matrix when nothing is pending, a materialised merged copy otherwise
    /// (call [`Graph::sync_matrices`] first on hot paths).
    pub fn adjacency_matrix(&self) -> Cow<'_, SparseMatrix<bool>> {
        self.adjacency.view()
    }

    /// The transposed adjacency matrix (merged view).
    pub fn adjacency_matrix_t(&self) -> Cow<'_, SparseMatrix<bool>> {
        self.adjacency_t.view()
    }

    /// The relation matrix for a relationship type id (merged view). Stored
    /// values are edge ids, so algebraic traversals recover the traversed
    /// edge entity straight from the product.
    pub fn relation_matrix(&self, rel: RelTypeId) -> Option<Cow<'_, SparseMatrix<u64>>> {
        self.relation_matrices.get(rel).map(DeltaMatrix::view)
    }

    /// The incrementally-maintained transpose of a relation matrix (merged
    /// view) — reverse traversals multiply against this instead of
    /// transposing on the fly.
    pub fn relation_matrix_t(&self, rel: RelTypeId) -> Option<Cow<'_, SparseMatrix<u64>>> {
        self.relation_matrices_t.get(rel).map(DeltaMatrix::view)
    }

    /// Number of relationship-type matrices currently allocated.
    pub fn relation_type_count(&self) -> usize {
        self.relation_matrices.len()
    }

    /// The **counting** relation matrix for a relationship type: cell
    /// `(i, j)` holds the number of parallel type-`rel` edges from `i` to `j`
    /// (`transposed` gives the reverse orientation). This is the operand the
    /// fused algebraic expressions multiply under the `plus_times` counting
    /// semiring, so multigraph row multiplicities survive fusion exactly.
    /// O(nnz) to build from the merged view plus the multi-edge side table.
    pub fn relation_count_matrix(
        &self,
        rel: RelTypeId,
        transposed: bool,
    ) -> Option<SparseMatrix<u64>> {
        let m = if transposed {
            self.relation_matrices_t.get(rel)
        } else {
            self.relation_matrices.get(rel)
        }?;
        let view = m.view();
        let triples: Vec<(u64, u64, u64)> = view
            .iter()
            .map(|(i, j, _)| {
                let (src, dst) = if transposed { (j, i) } else { (i, j) };
                (i, j, self.edge_multiplicity(rel, src, dst))
            })
            .collect();
        Some(SparseMatrix::from_triples(view.nrows(), view.ncols(), &triples).expect("in range"))
    }

    /// [`Graph::relation_count_matrix`], memoised for the current epoch.
    /// The O(nnz) rebuild happens at most once per `(rel, transposed)` per
    /// write version; any mutation invalidates the whole memo. This is what
    /// keeps *selective* fused queries (a one-row frontier against a large
    /// graph) from paying a full matrix rebuild per query.
    pub fn relation_count_matrix_cached(
        &self,
        rel: RelTypeId,
        transposed: bool,
    ) -> Option<Arc<SparseMatrix<u64>>> {
        let mut cache = self.count_cache.inner.lock();
        let (cached_epoch, matrices) = &mut *cache;
        if *cached_epoch != self.epoch {
            matrices.clear();
            *cached_epoch = self.epoch;
        }
        if let Some(m) = matrices.get(&(rel, transposed)) {
            return Some(Arc::clone(m));
        }
        let m = Arc::new(self.relation_count_matrix(rel, transposed)?);
        matrices.insert((rel, transposed), Arc::clone(&m));
        Some(m)
    }

    /// An `f64` matrix of edge weights read from property `prop` (edges
    /// without the property, or with a non-numeric value, get `default`).
    /// Parallel edges between the same endpoints keep the minimum weight —
    /// the natural semantics for the min-plus shortest-path semiring the
    /// `algo.sssp` procedure multiplies this matrix with.
    pub fn weight_matrix(&self, prop: &str, default: f64) -> SparseMatrix<f64> {
        let attr = self.schema.attribute_id(prop);
        let triples: Vec<(u64, u64, f64)> = self
            .edges
            .iter()
            .map(|(_, e)| {
                let w = attr.and_then(|a| e.attributes.get(a).as_f64()).unwrap_or(default);
                (e.src, e.dst, w)
            })
            .collect();
        SparseMatrix::from_triples_dup(self.dim, self.dim, &triples, f64::min)
            .expect("edge endpoints are in range")
    }

    /// Every edge of type `rel` between `src` and `dst`, in ascending edge-id
    /// order: the multi-edge side table's full list when the cell holds
    /// parallel edges, otherwise the single id in the matrix cell.
    pub fn edges_between(&self, rel: RelTypeId, src: NodeId, dst: NodeId) -> Cow<'_, [EdgeId]> {
        match self.multi_edges.get(&(rel, src, dst)) {
            Some(list) => Cow::Borrowed(list.as_slice()),
            None => match self.relation_matrices.get(rel).and_then(|m| m.extract_element(src, dst))
            {
                Some(id) => Cow::Owned(vec![id]),
                None => Cow::Owned(Vec::new()),
            },
        }
    }

    /// The ascending edge-id list of a cell holding **parallel** same-type
    /// edges, `None` for the common single-edge (or empty) cell. The batched
    /// traversal's probe loop uses this to expand a product cell to one row
    /// per edge without allocating for the single-edge case.
    pub fn parallel_edges(&self, rel: RelTypeId, src: NodeId, dst: NodeId) -> Option<&[EdgeId]> {
        self.multi_edges.get(&(rel, src, dst)).map(|v| v.as_slice())
    }

    /// How many parallel edges of type `rel` the `(src, dst)` cell holds
    /// (`1` for the common single-edge cell, `0` when no such edge exists).
    pub fn edge_multiplicity(&self, rel: RelTypeId, src: NodeId, dst: NodeId) -> u64 {
        match self.multi_edges.get(&(rel, src, dst)) {
            Some(list) => list.len() as u64,
            None => {
                u64::from(self.relation_matrices.get(rel).is_some_and(|m| m.contains(src, dst)))
            }
        }
    }

    /// Out-neighbours (or in-neighbours, or both) of a node, optionally
    /// restricted to a set of relationship types. Returns `(neighbour, edge)`
    /// pairs by reading matrix rows; a cell holding parallel same-type edges
    /// expands to one pair per edge (ascending edge ids), which is what gives
    /// `MATCH (a)-[r:R]->(b)` one row per edge binding.
    pub fn neighbors(
        &self,
        node: NodeId,
        rel_types: Option<&[RelTypeId]>,
        dir: TraverseDir,
    ) -> Vec<(NodeId, EdgeId)> {
        let mut out = Vec::new();
        let forward = matches!(dir, TraverseDir::Outgoing | TraverseDir::Both);
        let backward = matches!(dir, TraverseDir::Incoming | TraverseDir::Both);
        let mut extend = |t: RelTypeId, fwd: bool| {
            let row = if fwd {
                self.relation_matrices[t].row_iter(node)
            } else {
                self.relation_matrices_t[t].row_iter(node)
            };
            for (nbr, edge) in row {
                // Transposed rows traverse the edge backwards: the stored
                // entity runs nbr → node.
                let (s, d) = if fwd { (node, nbr) } else { (nbr, node) };
                match self.parallel_edges(t, s, d) {
                    Some(list) => out.extend(list.iter().map(|&e| (nbr, e))),
                    None => out.push((nbr, edge)),
                }
            }
        };
        match rel_types {
            Some(types) => {
                for &t in types {
                    if t >= self.relation_matrices.len() {
                        continue;
                    }
                    if forward {
                        extend(t, true);
                    }
                    if backward {
                        extend(t, false);
                    }
                }
            }
            None => {
                for t in 0..self.relation_matrices.len() {
                    if forward {
                        extend(t, true);
                    }
                    if backward {
                        extend(t, false);
                    }
                }
            }
        }
        out
    }

    /// Algebraic k-hop reachability: the set of nodes reachable from `source`
    /// in between `min_hops` and `max_hops` hops following `dir`, computed as a
    /// level-synchronous BFS of masked `vxm` operations over the boolean
    /// adjacency matrix — the core primitive behind the paper's k-hop
    /// benchmark.
    pub fn khop_reach(
        &self,
        source: NodeId,
        min_hops: u32,
        max_hops: u32,
        dir: TraverseDir,
    ) -> SparseVector<bool> {
        self.khop_reach_with(source, min_hops, max_hops, dir, Context::nthreads())
    }

    /// [`Graph::khop_reach`] with an explicit kernel thread budget. The plan
    /// executor passes the budget snapshotted at dispatch
    /// (`ExecutionPlan::thread_budget`) so a runtime `QUERY_THREADS` change
    /// cannot retune a BFS already in flight.
    pub fn khop_reach_with(
        &self,
        source: NodeId,
        min_hops: u32,
        max_hops: u32,
        dir: TraverseDir,
        nthreads: usize,
    ) -> SparseVector<bool> {
        let adj = self.adjacency.view();
        // The transpose is only materialised when the direction needs it.
        let adj_t = match dir {
            TraverseDir::Outgoing => None,
            TraverseDir::Incoming | TraverseDir::Both => Some(self.adjacency_t.view()),
        };
        let matrix: &SparseMatrix<bool> = match dir {
            TraverseDir::Outgoing | TraverseDir::Both => &adj,
            TraverseDir::Incoming => adj_t.as_deref().expect("materialised above"),
        };
        let semiring = Semiring::lor_land();
        let desc =
            Descriptor::new().with_mask_complement().with_mask_structure().with_nthreads(nthreads);

        let mut frontier = SparseVector::<bool>::new(self.dim);
        frontier.set_element(source, true);
        let mut visited = SparseVector::<bool>::new(self.dim);
        visited.set_element(source, true);
        let mut reached = SparseVector::<bool>::new(self.dim);
        // Hop 0 is the source itself: a `*0..n` pattern matches the start
        // node before any edge is traversed.
        if min_hops == 0 {
            reached.set_element(source, true);
        }

        for hop in 1..=max_hops {
            if frontier.is_empty() {
                break;
            }
            let mask = VectorMask::new(&visited);
            let mut next = vxm(&frontier, matrix, &semiring, Some(&mask), &desc);
            if dir == TraverseDir::Both {
                let back = vxm(
                    &frontier,
                    adj_t.as_deref().expect("materialised above"),
                    &semiring,
                    Some(&mask),
                    &desc,
                );
                next = ewise_add_vector(&next, &back, &BinaryOp::LOr);
            }
            // mark visited and accumulate the reached set when within range
            visited = ewise_add_vector(&visited, &next, &BinaryOp::LOr);
            if hop >= min_hops {
                reached = ewise_add_vector(&reached, &next, &BinaryOp::LOr);
            }
            frontier = next;
        }
        reached
    }

    /// Count of distinct nodes reachable within `k` hops (the TigerGraph
    /// benchmark's k-hop neighbourhood count).
    pub fn khop_count(&self, source: NodeId, k: u32) -> u64 {
        self.khop_reach(source, 1, k, TraverseDir::Outgoing).nvals() as u64
    }

    // ----------------------------------------------------------- bulk load

    /// Bulk-load a generated edge list: every vertex becomes a `:Node` node
    /// whose `id` property equals its vertex id, and every edge becomes a
    /// `:LINK` relationship. Duplicate edges and self-loops are dropped, as
    /// they are by an adjacency-matrix representation.
    pub fn bulk_load(&mut self, num_vertices: u64, edges: &[(u64, u64)]) {
        let label = self.label_id_or_create("Node");
        let rel = self.rel_type_id_or_create("LINK");
        let id_attr = self.schema.attribute_id_or_create("id");

        self.ensure_dim(num_vertices + 1);
        let mut label_triples = Vec::with_capacity(num_vertices as usize);
        for v in 0..num_vertices {
            let mut attrs = AttributeSet::new();
            attrs.set(id_attr, Value::Int(v as i64));
            let id = self.nodes.insert(NodeEntity { labels: vec![label], attributes: attrs });
            debug_assert_eq!(id, v, "bulk_load requires an empty graph");
            label_triples.push((v, v, true));
        }
        self.label_matrices[label] = self.delta_from_triples(&label_triples);

        let mut dedup: Vec<(u64, u64)> = edges
            .iter()
            .copied()
            .filter(|&(s, d)| s != d && s < num_vertices && d < num_vertices)
            .collect();
        dedup.sort_unstable();
        dedup.dedup();

        let mut adj_triples = Vec::with_capacity(dedup.len());
        let mut rel_triples = Vec::with_capacity(dedup.len());
        for &(s, d) in &dedup {
            let eid = self.edges.insert(EdgeEntity {
                src: s,
                dst: d,
                rel_type: rel,
                attributes: AttributeSet::new(),
            });
            adj_triples.push((s, d, true));
            rel_triples.push((s, d, eid));
        }
        // Bulk loads build the CSR structures directly (one construction, no
        // per-edge buffering) and the transposes with one transpose kernel.
        self.adjacency = self.delta_from_triples(&adj_triples);
        self.adjacency_t = self.delta_from_matrix(transpose(self.adjacency.main()));
        self.relation_matrices[rel] = self.delta_from_triples(&rel_triples);
        self.relation_matrices_t[rel] =
            self.delta_from_matrix(transpose(self.relation_matrices[rel].main()));
        self.epoch += 1;
    }

    /// Build a flushed delta matrix from triples at this graph's dimension.
    fn delta_from_triples<T: Scalar>(&self, triples: &[(u64, u64, T)]) -> DeltaMatrix<T> {
        self.delta_from_matrix(
            SparseMatrix::from_triples(self.dim, self.dim, triples).expect("in range"),
        )
    }

    fn delta_from_matrix<T: Scalar>(&self, matrix: SparseMatrix<T>) -> DeltaMatrix<T> {
        let mut m = DeltaMatrix::from_matrix(matrix);
        m.set_flush_threshold(self.flush_threshold);
        m
    }

    /// Pin the adjacency matrix's current epoch CSR. Diagnostic/test use:
    /// the epoch-reclamation tests assert through `Weak` handles derived from
    /// this that old epochs are freed, not accumulated.
    pub fn adjacency_epoch_pin(&self) -> std::sync::Arc<SparseMatrix<bool>> {
        self.adjacency.main_shared()
    }
}

/// An immutable, epoch-pinned view of a [`Graph`].
///
/// Produced by [`Graph::snapshot`]. The server takes one per read-only query
/// under a momentary read lock, then executes entirely lock-free: the
/// snapshot shares the flushed epoch CSRs and entity blocks with the live
/// graph by `Arc`, so concurrent writers copy-on-write around it and the
/// snapshot observes exactly one [`GraphSnapshot::epoch`], forever.
///
/// `Deref<Target = Graph>` exposes every shared read accessor; there is no
/// way to reach the write surface, so a snapshot cannot leak writes.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    graph: Graph,
    /// A flushed twin of `graph`, folded once on first demand by a plan that
    /// consumes whole matrices (variable-length traversals, procedures).
    /// Point reads never build it: a fold rebuilds whole CSRs — O(nnz) no
    /// matter how few deltas are pending — while merged row views serve
    /// single-hop reads at no materialisation cost at all.
    folded: std::sync::OnceLock<Graph>,
}

impl GraphSnapshot {
    /// Seal an owned clone of a graph into an immutable snapshot. Sealing
    /// itself does no work — pending deltas stay buffered, and the snapshot
    /// serves reads from merged views. The first whole-matrix plan to run
    /// folds a private twin (copy-on-write through `Arc::make_mut`, so
    /// epochs shared with the live graph and with other snapshots are never
    /// touched); every later whole-matrix plan borrows that twin for free.
    /// Folding reorganises without mutating, so the snapshot's logical
    /// contents and [`GraphSnapshot::epoch`] never change.
    pub fn seal(graph: Graph) -> GraphSnapshot {
        GraphSnapshot { graph, folded: std::sync::OnceLock::new() }
    }

    /// The logical write version this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch
    }

    /// Parse, plan and execute a read-only query against the pinned state.
    pub fn query_readonly(&self, text: &str) -> Result<ResultSet, QueryError> {
        let ast = cypher::parse(text)?;
        self.query_readonly_ast(&ast)
    }

    /// Plan and execute an already-parsed read-only query against the pinned
    /// state. Errors if the query contains write clauses. `&self`: many
    /// readers can share one snapshot behind an `Arc`.
    pub fn query_readonly_ast(&self, ast: &cypher::Query) -> Result<ResultSet, QueryError> {
        self.query_readonly_ast_at(ast, std::time::Instant::now())
    }

    /// Like [`GraphSnapshot::query_readonly_ast`], timing the statistics
    /// footer from a dispatch-captured `started`.
    pub fn query_readonly_ast_at(
        &self,
        ast: &cypher::Query,
        started: std::time::Instant,
    ) -> Result<ResultSet, QueryError> {
        let plan = self.build_plan(ast)?;
        plan.execute_read_only_at(self.backing_graph(&plan), started)
    }

    /// Profiled read-only execution against the pinned state
    /// (`GRAPH.PROFILE` on the server's lock-free read path).
    pub fn profile_readonly_ast_at(
        &self,
        ast: &cypher::Query,
        started: std::time::Instant,
    ) -> Result<(ResultSet, Vec<OpProfile>), QueryError> {
        let plan = self.build_plan(ast)?;
        plan.profile_read_only(self.backing_graph(&plan), started)
    }

    /// Execute an already-built **read-only** plan against the pinned state,
    /// timing the statistics footer from a dispatch-captured `started`. The
    /// server's plan cache goes through here: the skeleton is planned once,
    /// then bound and executed per request without re-parse/re-plan.
    pub fn execute_plan_at(
        &self,
        plan: &ExecutionPlan,
        started: std::time::Instant,
    ) -> Result<ResultSet, QueryError> {
        plan.execute_read_only_at(self.backing_graph(plan), started)
    }

    /// Profiled counterpart of [`GraphSnapshot::execute_plan_at`].
    pub fn profile_plan_at(
        &self,
        plan: &ExecutionPlan,
        started: std::time::Instant,
    ) -> Result<(ResultSet, Vec<OpProfile>), QueryError> {
        plan.profile_read_only(self.backing_graph(plan), started)
    }

    /// The graph a plan runs on: the pinned graph itself, or — for plans that
    /// consume whole matrices while deltas are pending — the lazily folded
    /// private twin.
    fn backing_graph(&self, plan: &ExecutionPlan) -> &Graph {
        if plan.needs_matrix_views() && self.graph.has_pending_deltas() {
            self.folded.get_or_init(|| {
                let mut twin = self.graph.clone();
                twin.sync_matrices();
                twin
            })
        } else {
            &self.graph
        }
    }
}

impl std::ops::Deref for GraphSnapshot {
    type Target = Graph;

    fn deref(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new("t");
        let a = g.add_node(&["Person"], vec![("name", Value::Str("a".into()))]);
        let b = g.add_node(&["Person"], vec![("name", Value::Str("b".into()))]);
        let c = g.add_node(&["City"], vec![("name", Value::Str("c".into()))]);
        g.add_edge(a, b, "KNOWS", vec![]).unwrap();
        g.add_edge(b, c, "LIVES_IN", vec![]).unwrap();
        g.add_edge(a, c, "LIVES_IN", vec![("since", Value::Int(2020))]).unwrap();
        g.sync_matrices();
        g
    }

    #[test]
    fn add_nodes_and_edges() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.node_property(0, "name"), Value::Str("a".into()));
        assert_eq!(g.node_property(0, "missing"), Value::Null);
        assert_eq!(g.edge_property(2, "since"), Value::Int(2020));
        assert!(g.node_has_label(0, "Person"));
        assert!(!g.node_has_label(2, "Person"));
        assert_eq!(g.nodes_with_label("Person"), vec![0, 1]);
        assert_eq!(g.nodes_with_label("Nope"), Vec::<u64>::new());
    }

    #[test]
    fn adjacency_matrix_reflects_edges() {
        let g = triangle();
        let adj = g.adjacency_matrix();
        assert_eq!(adj.nvals(), 3);
        assert_eq!(adj.extract_element(0, 1), Some(true));
        assert_eq!(adj.extract_element(1, 0), None);
        let adj_t = g.adjacency_matrix_t();
        assert_eq!(adj_t.extract_element(1, 0), Some(true));
    }

    #[test]
    fn neighbors_by_type_and_direction() {
        let g = triangle();
        let knows = g.schema.rel_type_id("KNOWS").unwrap();
        let lives = g.schema.rel_type_id("LIVES_IN").unwrap();
        let out = g.neighbors(0, None, TraverseDir::Outgoing);
        assert_eq!(out.len(), 2);
        let only_knows = g.neighbors(0, Some(&[knows]), TraverseDir::Outgoing);
        assert_eq!(only_knows, vec![(1, 0)]);
        let incoming_c = g.neighbors(2, Some(&[lives]), TraverseDir::Incoming);
        assert_eq!(incoming_c.len(), 2);
        let both = g.neighbors(1, None, TraverseDir::Both);
        assert_eq!(both.len(), 2); // in from a, out to c
    }

    #[test]
    fn khop_reach_and_count() {
        // path 0→1→2→3 plus shortcut 0→2
        let mut g = Graph::new("k");
        for _ in 0..4 {
            g.add_node(&["Node"], vec![]);
        }
        g.add_edge(0, 1, "L", vec![]).unwrap();
        g.add_edge(1, 2, "L", vec![]).unwrap();
        g.add_edge(2, 3, "L", vec![]).unwrap();
        g.add_edge(0, 2, "L", vec![]).unwrap();
        g.sync_matrices();

        assert_eq!(g.khop_count(0, 1), 2); // {1,2}
        assert_eq!(g.khop_count(0, 2), 3); // {1,2,3}
        assert_eq!(g.khop_count(0, 6), 3);
        assert_eq!(g.khop_count(3, 3), 0);
        // min_hops: nodes first reached at exactly 2 hops
        let exactly2 = g.khop_reach(0, 2, 2, TraverseDir::Outgoing);
        // only node 3 (2 was already reached at hop 1)
        assert_eq!(exactly2.nvals(), 1);
        // incoming direction
        assert_eq!(g.khop_reach(3, 1, 3, TraverseDir::Incoming).nvals(), 3);
        // both directions from the middle
        assert!(g.khop_reach(2, 1, 1, TraverseDir::Both).nvals() >= 2);
    }

    #[test]
    fn khop_reach_min_hops_zero_includes_the_source() {
        // path 0→1→2; regression: the hop loop starts at 1, so hop 0 (the
        // source itself) used to be dropped from `reached`.
        let mut g = Graph::new("k0");
        for _ in 0..3 {
            g.add_node(&["Node"], vec![]);
        }
        g.add_edge(0, 1, "L", vec![]).unwrap();
        g.add_edge(1, 2, "L", vec![]).unwrap();
        g.sync_matrices();

        let zero_to_two = g.khop_reach(0, 0, 2, TraverseDir::Outgoing);
        assert_eq!(zero_to_two.indices(), &[0, 1, 2]);
        // `*0` (zero hops exactly) is just the source.
        let zero_only = g.khop_reach(1, 0, 0, TraverseDir::Outgoing);
        assert_eq!(zero_only.indices(), &[1]);
        // An isolated source still reaches itself at hop 0 …
        let iso = g.add_node(&["Node"], vec![]);
        assert_eq!(g.khop_reach(iso, 0, 5, TraverseDir::Both).indices(), &[iso]);
        // … and min_hops ≥ 1 still excludes it.
        assert_eq!(g.khop_reach(0, 1, 2, TraverseDir::Outgoing).indices(), &[1, 2]);
    }

    #[test]
    fn delete_edge_updates_matrices() {
        let mut g = triangle();
        assert!(g.delete_edge(0));
        g.sync_matrices();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.adjacency_matrix().extract_element(0, 1), None);
        assert!(!g.delete_edge(0));
    }

    #[test]
    fn delete_node_removes_incident_edges() {
        let mut g = triangle();
        assert!(g.delete_node(2));
        g.sync_matrices();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1); // only a-KNOWS->b remains
        assert_eq!(g.adjacency_matrix().nvals(), 1);
        assert_eq!(g.nodes_with_label("City"), Vec::<u64>::new());
    }

    #[test]
    fn set_properties() {
        let mut g = triangle();
        assert!(g.set_node_property(0, "age", Value::Int(40)));
        assert_eq!(g.node_property(0, "age"), Value::Int(40));
        assert!(g.set_edge_property(0, "w", Value::Float(0.5)));
        assert_eq!(g.edge_property(0, "w"), Value::Float(0.5));
        assert!(!g.set_node_property(99, "x", Value::Int(1)));
    }

    #[test]
    fn bulk_load_builds_consistent_matrices() {
        let mut g = Graph::new("bulk");
        g.bulk_load(5, &[(0, 1), (0, 1), (1, 2), (2, 2), (3, 4), (4, 0)]);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4); // dup and self-loop dropped
        assert_eq!(g.adjacency_matrix().nvals(), 4);
        assert_eq!(g.node_property(3, "id"), Value::Int(3));
        assert_eq!(g.nodes_with_label("Node").len(), 5);
        assert_eq!(g.khop_count(0, 2), 2); // 0→1→2
    }

    #[test]
    fn grows_past_initial_dimension() {
        let mut g = Graph::new("grow");
        g.bulk_load(GROW_CHUNK + 5, &[(0, GROW_CHUNK + 1)]);
        assert!(g.dim() > GROW_CHUNK);
        assert_eq!(g.khop_count(0, 1), 1);
    }

    // ------------------------------------------------- delta-path edge cases

    #[test]
    fn readd_after_delete_recycles_the_edge_id() {
        let mut g = Graph::new("readd");
        g.set_flush_threshold(1_000_000); // keep everything buffered
        let a = g.add_node(&["N"], vec![]);
        let b = g.add_node(&["N"], vec![]);
        let e = g.add_edge(a, b, "L", vec![]).unwrap();
        assert!(g.delete_edge(e));
        // The DataBlock recycles the freed slot, so the new edge gets the
        // just-deleted id back while the delete is still pending.
        let e2 = g.add_edge(a, b, "L", vec![("w", Value::Int(1))]).unwrap();
        assert_eq!(e2, e, "freed edge id must be recycled");
        assert_eq!(g.neighbors(a, None, TraverseDir::Outgoing), vec![(b, e2)]);
        assert_eq!(g.edge_property(e2, "w"), Value::Int(1));
        g.sync_matrices();
        assert_eq!(g.neighbors(a, None, TraverseDir::Outgoing), vec![(b, e2)]);
        assert_eq!(g.adjacency_matrix().nvals(), 1);
    }

    #[test]
    fn delete_node_with_pending_incident_edge_inserts() {
        let mut g = Graph::new("pending-delete");
        g.set_flush_threshold(1_000_000);
        let a = g.add_node(&["N"], vec![]);
        let b = g.add_node(&["N"], vec![]);
        let c = g.add_node(&["N"], vec![]);
        g.add_edge(a, b, "L", vec![]).unwrap();
        g.add_edge(b, c, "L", vec![]).unwrap();
        g.add_edge(c, b, "L", vec![]).unwrap();
        assert!(g.has_pending_deltas(), "edge inserts must still be buffered");
        // Deleting b while its incident-edge inserts are still pending must
        // cancel them out of every matrix, including the transposes.
        assert!(g.delete_node(b));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.neighbors(a, None, TraverseDir::Both), vec![]);
        assert_eq!(g.neighbors(c, None, TraverseDir::Both), vec![]);
        assert_eq!(g.adjacency_matrix().nvals(), 0);
        assert_eq!(g.adjacency_matrix_t().nvals(), 0);
        g.sync_matrices();
        assert_eq!(g.adjacency_matrix().nvals(), 0);
        assert_eq!(g.khop_count(a, 3), 0);
    }

    #[test]
    fn ensure_dim_growth_with_pending_buffers() {
        let mut g = Graph::new("grow-pending");
        g.set_flush_threshold(1_000_000);
        // One short of the chunk boundary: the *next* node triggers growth.
        for _ in 0..GROW_CHUNK - 1 {
            g.add_node(&["N"], vec![]);
        }
        g.add_edge(0, 1, "L", vec![]).unwrap();
        g.add_edge(1, 2, "L", vec![]).unwrap();
        assert!(g.has_pending_deltas());
        let dim_before = g.dim();
        // The next node crosses the chunk boundary: every matrix grows while
        // its pending buffers are non-empty, and nothing is lost or flushed.
        let big = g.add_node(&["N"], vec![]);
        assert!(g.dim() > dim_before);
        assert!(g.has_pending_deltas(), "growth must not force a flush");
        g.add_edge(2, big, "L", vec![]).unwrap();
        assert_eq!(g.khop_count(0, 3), 3, "pre- and post-growth edges both traverse");
        g.sync_matrices();
        assert_eq!(g.khop_count(0, 3), 3);
        assert_eq!(g.adjacency_matrix().nvals(), 3);
    }

    #[test]
    fn parallel_edge_delete_repoints_matrix_at_survivor() {
        let mut g = Graph::new("parallel");
        let a = g.add_node(&["N"], vec![]);
        let b = g.add_node(&["N"], vec![]);
        let e1 = g.add_edge(a, b, "L", vec![]).unwrap();
        let e2 = g.add_edge(a, b, "L", vec![]).unwrap();
        // Deleting the edge the matrix currently points at must re-point the
        // entry at the survivor, never hand out a dead edge id.
        assert!(g.delete_edge(e2));
        let nbrs = g.neighbors(a, None, TraverseDir::Outgoing);
        assert_eq!(nbrs, vec![(b, e1)]);
        assert!(g.edge(nbrs[0].1).is_some(), "traversal returned a dead edge id");
        let rel = g.schema.rel_type_id("L").unwrap();
        assert_eq!(g.relation_matrix(rel).unwrap().extract_element(a, b), Some(e1));
        // Deleting the survivor clears the entries everywhere.
        assert!(g.delete_edge(e1));
        assert_eq!(g.neighbors(a, None, TraverseDir::Outgoing), vec![]);
        assert_eq!(g.adjacency_matrix().nvals(), 0);
        assert_eq!(g.adjacency_matrix_t().nvals(), 0);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut g = triangle();
        g.set_flush_threshold(2); // force epoch publications mid-test
        let epoch = g.epoch();
        let snap = g.snapshot();

        // Mutate the live graph heavily after the snapshot was pinned.
        let d = g.add_node(&["Person"], vec![("name", Value::Str("d".into()))]);
        g.add_edge(0, d, "KNOWS", vec![]).unwrap();
        g.set_node_property(0, "name", Value::Str("renamed".into()));
        g.delete_node(2);
        g.sync_matrices();

        assert!(g.epoch() > epoch);
        assert_eq!(snap.epoch(), epoch, "a snapshot pins one epoch forever");
        // Entity reads, matrix reads and full queries all see the old state.
        assert_eq!(snap.node_count(), 3);
        assert_eq!(snap.node_property(0, "name"), Value::Str("a".into()));
        assert_eq!(snap.adjacency_matrix().nvals(), 3);
        let rs = snap.query_readonly("MATCH (n) RETURN count(n)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(3)));
        // Whole-matrix plans fold the snapshot's private twin on demand,
        // which must not have leaked into the live graph or changed the
        // snapshot's contents.
        let rs = snap.query_readonly("MATCH (a)-[*1..3]->(b) RETURN count(DISTINCT b)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
        assert_eq!(snap.node_count(), 3);
        // Write clauses are rejected on the snapshot path.
        assert!(snap.query_readonly("CREATE (:Nope)").is_err());
    }

    #[test]
    fn snapshot_epochs_are_reclaimed_not_accumulated() {
        let mut g = Graph::new("reclaim");
        g.set_flush_threshold(4);
        for _ in 0..8 {
            g.add_node(&["N"], vec![]);
        }
        g.sync_matrices();

        let pinned = g.snapshot(); // long-lived reader on the current epoch
        let first_epoch_pin = g.adjacency_epoch_pin();
        let weak_first = std::sync::Arc::downgrade(&first_epoch_pin);
        drop(first_epoch_pin);

        // A write-heavy loop that keeps publishing epochs (threshold 4) while
        // short-lived snapshots come and go, as the server's read path does.
        let mut weaks = Vec::new();
        for i in 0..32 {
            let s = g.snapshot();
            g.add_edge(i % 8, (i + 1) % 8, "L", vec![]).unwrap();
            g.add_edge((i + 2) % 8, i % 8, "L", vec![]).unwrap();
            g.sync_matrices();
            weaks.push(std::sync::Arc::downgrade(&g.adjacency_epoch_pin()));
            drop(s);
        }
        let live = weaks.iter().filter(|w| w.upgrade().is_some()).count();
        assert_eq!(live, 1, "only the newest adjacency epoch may stay alive");
        // The long-pinned first epoch is still alive through `pinned`…
        assert!(weak_first.upgrade().is_some());
        assert_eq!(pinned.node_count(), 8);
        assert_eq!(pinned.edge_count(), 0);
        drop(pinned);
        // …and reclaimed the moment the last reader drops.
        assert!(weak_first.upgrade().is_none(), "dropping the last snapshot frees its epoch");
    }

    #[test]
    fn merged_views_serve_reads_without_a_flush() {
        let mut g = Graph::new("merged");
        g.set_flush_threshold(1_000_000);
        let a = g.add_node(&["Person"], vec![]);
        let b = g.add_node(&["Person"], vec![]);
        let c = g.add_node(&["City"], vec![]);
        g.add_edge(a, b, "KNOWS", vec![]).unwrap();
        g.add_edge(b, c, "LIVES_IN", vec![]).unwrap();
        assert!(g.has_pending_deltas());
        // Every read surface answers from the merged view.
        assert_eq!(g.nodes_with_label("Person"), vec![a, b]);
        assert_eq!(g.khop_count(a, 2), 2);
        assert_eq!(g.khop_reach(c, 1, 2, TraverseDir::Incoming).nvals(), 2);
        assert_eq!(g.adjacency_matrix().nvals(), 2);
        let rs = g.query_readonly("MATCH (p:Person)-[:KNOWS]->(q) RETURN count(q)").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
        assert!(g.has_pending_deltas(), "read-only queries must not flush");
    }
}
