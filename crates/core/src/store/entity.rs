//! Node and edge entities and their attribute sets.

use crate::store::schema::{AttributeId, LabelId, RelTypeId};
use crate::value::Value;
use crate::NodeId;

/// A set of `(attribute id, value)` pairs attached to a node or edge.
///
/// Stored as a small sorted vector: property counts per entity are tiny, and a
/// vector beats a hash map for both memory and lookup speed at that size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttributeSet {
    attrs: Vec<(AttributeId, Value)>,
}

impl AttributeSet {
    /// Create an empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Set (insert or overwrite) an attribute. Setting `Null` removes it, as
    /// in openCypher `SET n.p = null`. Returns true if a value was added or
    /// replaced.
    pub fn set(&mut self, id: AttributeId, value: Value) -> bool {
        if value.is_null() {
            return self.remove(id);
        }
        match self.attrs.binary_search_by_key(&id, |(a, _)| *a) {
            Ok(pos) => {
                self.attrs[pos].1 = value;
                true
            }
            Err(pos) => {
                self.attrs.insert(pos, (id, value));
                true
            }
        }
    }

    /// Remove an attribute; returns whether it existed.
    pub fn remove(&mut self, id: AttributeId) -> bool {
        match self.attrs.binary_search_by_key(&id, |(a, _)| *a) {
            Ok(pos) => {
                self.attrs.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Read an attribute; `Value::Null` when absent (openCypher semantics).
    pub fn get(&self, id: AttributeId) -> Value {
        match self.attrs.binary_search_by_key(&id, |(a, _)| *a) {
            Ok(pos) => self.attrs[pos].1.clone(),
            Err(_) => Value::Null,
        }
    }

    /// Iterate over `(attribute id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttributeId, &Value)> + '_ {
        self.attrs.iter().map(|(id, v)| (*id, v))
    }
}

/// A node entity: labels plus properties. The node's id (matrix index) is the
/// DataBlock slot it lives in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeEntity {
    /// Label ids attached to this node.
    pub labels: Vec<LabelId>,
    /// Property values.
    pub attributes: AttributeSet,
}

impl NodeEntity {
    /// Whether the node carries the given label.
    pub fn has_label(&self, label: LabelId) -> bool {
        self.labels.contains(&label)
    }
}

/// An edge entity: endpoints, relationship type, properties.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeEntity {
    /// Source node id.
    pub src: NodeId,
    /// Destination node id.
    pub dst: NodeId,
    /// Relationship type id.
    pub rel_type: RelTypeId,
    /// Property values.
    pub attributes: AttributeSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_set_get_set_remove() {
        let mut a = AttributeSet::new();
        assert!(a.is_empty());
        a.set(3, Value::Int(1));
        a.set(1, Value::Str("x".into()));
        a.set(3, Value::Int(2)); // overwrite
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(3), Value::Int(2));
        assert_eq!(a.get(1), Value::Str("x".into()));
        assert_eq!(a.get(9), Value::Null);
        assert!(a.remove(1));
        assert!(!a.remove(1));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn setting_null_deletes_the_attribute() {
        let mut a = AttributeSet::new();
        a.set(0, Value::Int(5));
        a.set(0, Value::Null);
        assert_eq!(a.get(0), Value::Null);
        assert!(a.is_empty());
    }

    #[test]
    fn node_label_membership() {
        let n = NodeEntity { labels: vec![0, 2], attributes: AttributeSet::new() };
        assert!(n.has_label(0));
        assert!(!n.has_label(1));
    }
}
