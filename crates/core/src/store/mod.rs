//! The graph storage layer: entity DataBlocks, schemas (label / relationship
//! type / attribute registries) and the matrix-backed [`graph::Graph`] object.

pub mod datablock;
pub mod entity;
pub mod graph;
pub mod schema;

pub use datablock::DataBlock;
pub use entity::{AttributeSet, EdgeEntity, NodeEntity};
pub use graph::{Graph, GraphSnapshot};
pub use schema::{AttributeId, LabelId, RelTypeId, Schema};
