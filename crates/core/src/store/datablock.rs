//! DataBlock: RedisGraph's blocked entity store.
//!
//! Entities (nodes, edges) are stored in fixed-size blocks so that the store
//! can grow without reallocating or moving existing entities, and deleted
//! slots are recycled through a free list. Entity ids are stable for the
//! lifetime of the entity and double as matrix row/column indices.
//!
//! Blocks are held behind `Arc`s with copy-on-write mutation, so cloning a
//! DataBlock is O(#blocks) pointer bumps — that is what makes a whole-graph
//! snapshot cheap enough to take per read query. A mutation of a block whose
//! `Arc` is shared with a snapshot first clones that one block (16K slots),
//! never the whole store; with no snapshot pinning it, mutation is in place.

use std::sync::Arc;

const BLOCK_CAP: usize = 16_384;

/// A blocked, free-list-recycling arena of `T`.
#[derive(Debug, Clone)]
pub struct DataBlock<T> {
    blocks: Vec<Arc<Vec<Option<T>>>>,
    free: Vec<u64>,
    len: usize,
    high_watermark: u64,
}

impl<T> Default for DataBlock<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DataBlock<T> {
    /// Create an empty DataBlock.
    pub fn new() -> Self {
        DataBlock { blocks: Vec::new(), free: Vec::new(), len: 0, high_watermark: 0 }
    }

    /// Number of live entities.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no live entities are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the largest id ever allocated (matrix dimension requirement).
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark
    }

    /// Get a reference to an entity by id.
    pub fn get(&self, id: u64) -> Option<&T> {
        let (b, i) = (id as usize / BLOCK_CAP, id as usize % BLOCK_CAP);
        self.blocks.get(b)?.get(i)?.as_ref()
    }

    /// Whether an entity with this id is live.
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Iterate `(id, &entity)` over live entities in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        self.blocks.iter().enumerate().flat_map(|(b, block)| {
            block.iter().enumerate().filter_map(move |(i, slot)| {
                slot.as_ref().map(|item| ((b * BLOCK_CAP + i) as u64, item))
            })
        })
    }
}

impl<T: Clone> DataBlock<T> {
    /// Insert an entity, returning its id. Recycles the most recently freed
    /// slot if one exists.
    pub fn insert(&mut self, item: T) -> u64 {
        let id = if let Some(id) = self.free.pop() {
            id
        } else {
            let id = self.high_watermark;
            self.high_watermark += 1;
            id
        };
        let (b, i) = (id as usize / BLOCK_CAP, id as usize % BLOCK_CAP);
        while self.blocks.len() <= b {
            self.blocks.push(Arc::new(Vec::new()));
        }
        let block = Arc::make_mut(&mut self.blocks[b]);
        if block.len() <= i {
            block.resize_with(i + 1, || None);
        }
        debug_assert!(block[i].is_none(), "slot {id} already occupied");
        block[i] = Some(item);
        self.len += 1;
        id
    }

    /// Get a mutable reference to an entity by id.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let (b, i) = (id as usize / BLOCK_CAP, id as usize % BLOCK_CAP);
        // Probe through the shared reference first so a miss never pays the
        // copy-on-write block clone.
        self.blocks.get(b)?.get(i)?.as_ref()?;
        Arc::make_mut(&mut self.blocks[b]).get_mut(i)?.as_mut()
    }

    /// Remove an entity, freeing its slot for reuse. Returns the entity.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let (b, i) = (id as usize / BLOCK_CAP, id as usize % BLOCK_CAP);
        self.blocks.get(b)?.get(i)?.as_ref()?;
        let item = Arc::make_mut(&mut self.blocks[b]).get_mut(i)?.take();
        if item.is_some() {
            self.free.push(id);
            self.len -= 1;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut db = DataBlock::new();
        let a = db.insert("a");
        let b = db.insert("b");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(db.get(a), Some(&"a"));
        assert_eq!(db.get(b), Some(&"b"));
        assert_eq!(db.len(), 2);
        assert_eq!(db.high_watermark(), 2);
    }

    #[test]
    fn remove_recycles_ids() {
        let mut db = DataBlock::new();
        let a = db.insert(1);
        let _b = db.insert(2);
        assert_eq!(db.remove(a), Some(1));
        assert_eq!(db.len(), 1);
        assert!(!db.contains(a));
        let c = db.insert(3);
        assert_eq!(c, a, "freed id should be recycled");
        assert_eq!(db.high_watermark(), 2);
        assert_eq!(db.remove(99), None);
    }

    #[test]
    fn iteration_skips_holes() {
        let mut db = DataBlock::new();
        for i in 0..10 {
            db.insert(i);
        }
        db.remove(3);
        db.remove(7);
        let ids: Vec<u64> = db.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut db = DataBlock::new();
        let id = db.insert(vec![1, 2]);
        db.get_mut(id).unwrap().push(3);
        assert_eq!(db.get(id).unwrap(), &vec![1, 2, 3]);
    }

    #[test]
    fn grows_past_one_block() {
        let mut db = DataBlock::new();
        let n = BLOCK_CAP + 10;
        for i in 0..n {
            assert_eq!(db.insert(i) as usize, i);
        }
        assert_eq!(db.len(), n);
        assert_eq!(db.get((BLOCK_CAP + 5) as u64), Some(&(BLOCK_CAP + 5)));
    }

    #[test]
    fn clone_is_a_snapshot_with_shared_blocks() {
        let mut db = DataBlock::new();
        for i in 0..10 {
            db.insert(i);
        }
        let snap = db.clone();
        *db.get_mut(3).unwrap() = 99;
        db.remove(7);
        db.insert(42);
        assert_eq!(snap.get(3), Some(&3), "snapshot must not see later writes");
        assert_eq!(snap.get(7), Some(&7));
        assert_eq!(snap.len(), 10);
        assert_eq!(db.get(3), Some(&99));
        assert_eq!(db.get(7), Some(&42), "freed slot is recycled in the live store only");
    }
}
