//! Schemas: the registries mapping label names, relationship type names and
//! attribute (property) names to dense integer ids. RedisGraph keeps one
//! matrix per label and per relationship type, so these ids index directly
//! into the graph's matrix arrays.

use std::collections::HashMap;

/// Dense id of a node label.
pub type LabelId = usize;
/// Dense id of a relationship type.
pub type RelTypeId = usize;
/// Dense id of a property key.
pub type AttributeId = usize;

/// Name ⇄ id registries for labels, relationship types and attributes.
#[derive(Debug, Default, Clone)]
pub struct Schema {
    labels: Vec<String>,
    label_ids: HashMap<String, LabelId>,
    rel_types: Vec<String>,
    rel_type_ids: HashMap<String, RelTypeId>,
    attributes: Vec<String>,
    attribute_ids: HashMap<String, AttributeId>,
}

impl Schema {
    /// Create an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the id for a label name.
    pub fn label_id_or_create(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.label_ids.get(name) {
            return id;
        }
        let id = self.labels.len();
        self.labels.push(name.to_string());
        self.label_ids.insert(name.to_string(), id);
        id
    }

    /// Look up a label id without creating it.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.label_ids.get(name).copied()
    }

    /// Label name for an id.
    pub fn label_name(&self, id: LabelId) -> Option<&str> {
        self.labels.get(id).map(|s| s.as_str())
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Get or create the id for a relationship type name.
    pub fn rel_type_id_or_create(&mut self, name: &str) -> RelTypeId {
        if let Some(&id) = self.rel_type_ids.get(name) {
            return id;
        }
        let id = self.rel_types.len();
        self.rel_types.push(name.to_string());
        self.rel_type_ids.insert(name.to_string(), id);
        id
    }

    /// Look up a relationship type id.
    pub fn rel_type_id(&self, name: &str) -> Option<RelTypeId> {
        self.rel_type_ids.get(name).copied()
    }

    /// Relationship type name for an id.
    pub fn rel_type_name(&self, id: RelTypeId) -> Option<&str> {
        self.rel_types.get(id).map(|s| s.as_str())
    }

    /// Number of relationship types.
    pub fn rel_type_count(&self) -> usize {
        self.rel_types.len()
    }

    /// Get or create the id for an attribute (property key).
    pub fn attribute_id_or_create(&mut self, name: &str) -> AttributeId {
        if let Some(&id) = self.attribute_ids.get(name) {
            return id;
        }
        let id = self.attributes.len();
        self.attributes.push(name.to_string());
        self.attribute_ids.insert(name.to_string(), id);
        id
    }

    /// Look up an attribute id.
    pub fn attribute_id(&self, name: &str) -> Option<AttributeId> {
        self.attribute_ids.get(name).copied()
    }

    /// Attribute name for an id.
    pub fn attribute_name(&self, id: AttributeId) -> Option<&str> {
        self.attributes.get(id).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut s = Schema::new();
        assert_eq!(s.label_id_or_create("Person"), 0);
        assert_eq!(s.label_id_or_create("Company"), 1);
        assert_eq!(s.label_id_or_create("Person"), 0);
        assert_eq!(s.label_count(), 2);
        assert_eq!(s.label_name(1), Some("Company"));
        assert_eq!(s.label_id("Missing"), None);
    }

    #[test]
    fn rel_types_and_attributes_are_separate_namespaces() {
        let mut s = Schema::new();
        let knows = s.rel_type_id_or_create("KNOWS");
        let name = s.attribute_id_or_create("name");
        let person = s.label_id_or_create("KNOWS"); // same text, different namespace
        assert_eq!(knows, 0);
        assert_eq!(name, 0);
        assert_eq!(person, 0);
        assert_eq!(s.rel_type_count(), 1);
        assert_eq!(s.attribute_name(0), Some("name"));
        assert_eq!(s.rel_type_name(0), Some("KNOWS"));
    }
}
