//! The linter proven against its fixture files and the live workspace.
//!
//! Each `bad_*.rs` fixture marks every line the linter must flag with a
//! `// BAD` comment — the test asserts the flagged line set matches those
//! markers exactly (no misses, no false positives), `clean.rs` yields zero
//! violations despite its decoys, and the real workspace is clean under
//! the real `xlint.toml` (the same invocation CI blocks on).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use xlint::{lint_source, lint_tree, parse_config, Config};

fn repo_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    (format!("crates/xlint/fixtures/{name}"), src)
}

/// Line numbers carrying a `// BAD` marker — the fixture's own record of
/// exactly which lines the linter must flag.
fn bad_lines(src: &str) -> BTreeSet<u32> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// BAD"))
        .map(|(i, _)| (i + 1) as u32)
        .collect()
}

fn workspace_config() -> Config {
    let text = std::fs::read_to_string(repo_root().join("xlint.toml")).unwrap();
    parse_config(&text).unwrap()
}

fn assert_flags_exactly_the_bad_lines(name: &str, rule: &str, cfg: &Config) {
    let (path, src) = fixture(name);
    let violations = lint_source(&path, &src, cfg);
    let expected = bad_lines(&src);
    assert!(!expected.is_empty(), "{name} has no BAD markers — fixture is broken");
    let flagged: BTreeSet<u32> = violations.iter().map(|v| v.line).collect();
    assert_eq!(flagged, expected, "{name}: flagged lines diverge from its BAD markers");
    for v in &violations {
        assert_eq!(v.rule, rule, "{name}: unexpected rule at line {}: {v}", v.line);
    }
}

#[test]
fn every_fixture_violation_is_flagged() {
    let mut cfg = workspace_config();
    // The fixture tree is skipped by the workspace walk; linting the files
    // directly needs the skip lifted and the unwrap fixtures opted in.
    cfg.skip_paths.clear();
    cfg.no_unwrap_paths.push("crates/xlint/fixtures/bad_unwrap.rs".to_string());
    cfg.no_unwrap_paths.push("crates/xlint/fixtures/clean.rs".to_string());

    assert_flags_exactly_the_bad_lines("bad_std_sync.rs", "std-sync", &cfg);
    assert_flags_exactly_the_bad_lines("bad_std_thread.rs", "std-thread", &cfg);
    assert_flags_exactly_the_bad_lines("bad_instant.rs", "instant-now", &cfg);
    assert_flags_exactly_the_bad_lines("bad_unwrap.rs", "no-unwrap", &cfg);
    assert_flags_exactly_the_bad_lines("bad_unsafe.rs", "safety-comment", &cfg);
    assert_flags_exactly_the_bad_lines("bad_static_mut.rs", "static-mut", &cfg);
}

#[test]
fn clean_fixture_stays_clean_despite_decoys() {
    let mut cfg = workspace_config();
    cfg.skip_paths.clear();
    cfg.no_unwrap_paths.push("crates/xlint/fixtures/clean.rs".to_string());
    let (path, src) = fixture("clean.rs");
    let violations = lint_source(&path, &src, &cfg);
    assert!(violations.is_empty(), "clean.rs flagged: {violations:#?}");
}

#[test]
fn live_workspace_is_clean_under_the_checked_in_config() {
    let violations = lint_tree(&repo_root(), &workspace_config()).unwrap();
    let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    assert!(rendered.is_empty(), "workspace violations:\n{}", rendered.join("\n"));
}
