//! # xlint — workspace invariant linter
//!
//! A dependency-free, token-level linter for project invariants a generic
//! tool cannot express (run as `cargo run -p xlint` from the repository
//! root; CI runs it as a blocking gate):
//!
//! | rule             | invariant                                                              |
//! |------------------|------------------------------------------------------------------------|
//! | `std-sync`       | no direct `std::sync` primitives outside the vendored shims — locks,  |
//! |                  | channels and atomics must go through `parking_lot` / `crossbeam` so    |
//! |                  | production code stays model-checkable (`Arc`-family types are allowed) |
//! | `std-thread`     | no direct `std::thread` spawns/sleeps — same reason                    |
//! | `instant-now`    | no `Instant::now()` outside the dispatch/metrics allowlist: a query    |
//! |                  | has exactly one wall-clock anchor, captured at dispatch                |
//! | `no-unwrap`      | no `unwrap()`/`expect()` in the listed files (the server's network     |
//! |                  | paths must degrade per-connection, never panic the process)            |
//! | `safety-comment` | every `unsafe` block carries a `// SAFETY:` comment                    |
//! | `static-mut`     | no `static mut` anywhere                                               |
//!
//! The lexer skips string literals and comments, and whole `#[cfg(test)]`
//! items are exempt (tests may use std primitives freely — they never run
//! under the model scheduler). Allowlists live in `xlint.toml`.

use std::fs;
use std::io;
use std::path::Path;

// --------------------------------------------------------------- tokens

/// One source token: an identifier or a punctuation symbol (`::` is joined).
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Sym(String),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
}

impl Token {
    fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
    fn is_sym(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Sym(y) if y == s)
    }
    fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(i) => Some(i.as_str()),
            Tok::Sym(_) => None,
        }
    }
}

/// Lexer output: code tokens plus comments (kept aside, with their lines,
/// for the `safety-comment` rule).
struct Lexed {
    tokens: Vec<Token>,
    comments: Vec<(u32, String)>,
}

/// Tokenize Rust source just deeply enough to lint: identifiers and
/// punctuation survive; strings (incl. raw/byte), char literals, lifetimes
/// and comments are consumed so their contents can never trip a rule.
fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_part = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            // Line comment (incl. doc comments).
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            comments.push((line, chars[start..j].iter().collect()));
            i = j;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            // Block comment; Rust nests them.
            let start_line = line;
            let start = i + 2;
            let mut depth = 1;
            let mut j = start;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            comments.push((start_line, chars[start..end].iter().collect()));
            i = j;
        } else if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < n && is_ident_part(chars[j]) {
                j += 1;
            }
            let word: String = chars[start..j].iter().collect();
            // String-literal prefixes: the ident glues onto a string whose
            // body must not be scanned (`r#"…"#` may contain bare quotes).
            let is_prefix = matches!(word.as_str(), "r" | "b" | "c" | "br" | "cr");
            if is_prefix && j < n && (chars[j] == '"' || (word.contains('r') && chars[j] == '#')) {
                i = consume_string(&chars, j, word.contains('r'), &mut line);
            } else {
                tokens.push(Token { tok: Tok::Ident(word), line });
                i = j;
            }
        } else if c.is_ascii_digit() {
            // Number (suffixes, hex, exponents; `1.5` but not `t.0.unwrap`).
            let mut j = i;
            while j < n && is_ident_part(chars[j]) {
                j += 1;
            }
            if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && is_ident_part(chars[j]) {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"' {
            i = consume_string(&chars, i, false, &mut line);
        } else if c == '\'' {
            // Char literal or lifetime.
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: consume to the closing quote.
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                i = j + 1;
            } else if i + 2 < n && chars[i + 2] == '\'' {
                i += 3; // plain char literal 'x'
            } else {
                // Lifetime: quote plus identifier, no closing quote.
                let mut j = i + 1;
                while j < n && is_ident_part(chars[j]) {
                    j += 1;
                }
                i = j;
            }
        } else if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            tokens.push(Token { tok: Tok::Sym("::".to_string()), line });
            i += 2;
        } else {
            tokens.push(Token { tok: Tok::Sym(c.to_string()), line });
            i += 1;
        }
    }
    Lexed { tokens, comments }
}

/// Consume a string literal starting at `i` (at the `"`, or at the first
/// `#` of a raw string); returns the index just past its closing delimiter.
fn consume_string(chars: &[char], i: usize, raw: bool, line: &mut u32) -> usize {
    let n = chars.len();
    let mut j = i;
    let mut hashes = 0;
    if raw {
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert!(j >= n || chars[j] == '"');
    j += 1; // past the opening quote
    while j < n {
        let c = chars[j];
        if c == '\n' {
            *line += 1;
            j += 1;
        } else if !raw && c == '\\' {
            j += 2; // escape: skip the escaped char
        } else if c == '"' {
            if !raw {
                return j + 1;
            }
            // Raw: the quote must be followed by the same number of hashes.
            let mut k = j + 1;
            let mut seen = 0;
            while k < n && chars[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    n
}

/// Remove every item annotated `#[cfg(test)]` (and the attribute itself):
/// the item's tokens up to a top-level `;` or through its first balanced
/// `{ … }` group. Stacked attributes after the cfg are removed with it.
fn strip_test_items(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    let n = tokens.len();
    while i < n {
        if tokens[i].is_sym("#") {
            // `#[ … ]` or `#![ … ]` — find the matching bracket.
            let mut a = i + 1;
            if a < n && tokens[a].is_sym("!") {
                a += 1;
            }
            if a < n && tokens[a].is_sym("[") {
                let close = matching_bracket(&tokens, a);
                let is_cfg_test = tokens[a..close].iter().any(|t| t.is_ident("cfg"))
                    && tokens[a..close].iter().any(|t| t.is_ident("test"));
                if is_cfg_test {
                    let mut j = close + 1;
                    // Skip any further attributes stacked on the same item.
                    while j < n && tokens[j].is_sym("#") {
                        let mut b = j + 1;
                        if b < n && tokens[b].is_sym("!") {
                            b += 1;
                        }
                        if b < n && tokens[b].is_sym("[") {
                            j = matching_bracket(&tokens, b) + 1;
                        } else {
                            break;
                        }
                    }
                    // Skip the item itself.
                    let mut depth = 0usize;
                    while j < n {
                        if tokens[j].is_sym(";") && depth == 0 {
                            j += 1;
                            break;
                        } else if tokens[j].is_sym("{") {
                            depth += 1;
                        } else if tokens[j].is_sym("}") {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index of the `]` matching the `[` at `open` (saturating at the end).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_sym("[") {
            depth += 1;
        } else if tokens[i].is_sym("]") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

// --------------------------------------------------------------- config

/// Parsed `xlint.toml`: path prefixes are relative to the repository root
/// with forward slashes; symbols are bare identifiers.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Never lint files under these prefixes (vendor, fixtures, …).
    pub skip_paths: Vec<String>,
    pub std_sync_allow_paths: Vec<String>,
    /// `std::sync` items that are fine anywhere (the `Arc` family).
    pub std_sync_allow_symbols: Vec<String>,
    pub std_thread_allow_paths: Vec<String>,
    /// Non-scheduling `std::thread` items that are fine anywhere.
    pub std_thread_allow_symbols: Vec<String>,
    pub instant_allow_paths: Vec<String>,
    /// Files where `unwrap()`/`expect()` are banned.
    pub no_unwrap_paths: Vec<String>,
}

/// Parse the `xlint.toml` subset: `[section]` headers, `#` comments, and
/// `key = ["a", "b", …]` string-array assignments (single- or multi-line).
pub fn parse_config(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut pending_key: Option<String> = None;
    let mut pending_items: Vec<String> = Vec::new();
    let mut in_array = false;

    fn strip_comment(line: &str) -> &str {
        // `#` starts a comment outside strings; values here never contain
        // `#`, so a simple split is faithful for this subset.
        match line.find('#') {
            Some(idx) => &line[..idx],
            None => line,
        }
    }

    fn parse_items(chunk: &str, items: &mut Vec<String>) -> Result<bool, String> {
        // Accumulate quoted strings; returns true when `]` closes the array.
        let mut rest = chunk;
        loop {
            rest = rest.trim_start_matches([',', ' ', '\t']);
            if rest.is_empty() {
                return Ok(false);
            }
            if let Some(after) = rest.strip_prefix(']') {
                if !after.trim().is_empty() {
                    return Err(format!("trailing content after `]`: {after:?}"));
                }
                return Ok(true);
            }
            let Some(body) = rest.strip_prefix('"') else {
                return Err(format!("expected string in array, found {rest:?}"));
            };
            let Some(end) = body.find('"') else {
                return Err(format!("unterminated string: {rest:?}"));
            };
            items.push(body[..end].to_string());
            rest = &body[end + 1..];
        }
    }

    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("xlint.toml:{}: {}", lineno + 1, msg);
        if in_array {
            match parse_items(line, &mut pending_items) {
                Ok(true) => {
                    in_array = false;
                    let key = pending_key.take().expect("array has a key");
                    assign(&mut cfg, &section, key, &pending_items).map_err(|m| err(&m))?;
                    pending_items.clear();
                }
                Ok(false) => {}
                Err(m) => return Err(err(&m)),
            }
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_string();
            let value = value.trim();
            let Some(body) = value.strip_prefix('[') else {
                return Err(err("expected a `[ … ]` string array value"));
            };
            pending_items.clear();
            match parse_items(body, &mut pending_items) {
                Ok(true) => {
                    assign(&mut cfg, &section, key, &pending_items).map_err(|m| err(&m))?;
                    pending_items.clear();
                }
                Ok(false) => {
                    pending_key = Some(key);
                    in_array = true;
                }
                Err(m) => return Err(err(&m)),
            }
        } else {
            return Err(err("expected `[section]` or `key = [ … ]`"));
        }
    }
    if in_array {
        return Err("xlint.toml: unterminated array at end of file".to_string());
    }
    Ok(cfg)
}

fn assign(cfg: &mut Config, section: &str, key: String, items: &[String]) -> Result<(), String> {
    let slot = match (section, key.as_str()) {
        ("skip", "paths") => &mut cfg.skip_paths,
        ("std-sync", "allow_paths") => &mut cfg.std_sync_allow_paths,
        ("std-sync", "allow_symbols") => &mut cfg.std_sync_allow_symbols,
        ("std-thread", "allow_paths") => &mut cfg.std_thread_allow_paths,
        ("std-thread", "allow_symbols") => &mut cfg.std_thread_allow_symbols,
        ("instant-now", "allow_paths") => &mut cfg.instant_allow_paths,
        ("no-unwrap", "paths") => &mut cfg.no_unwrap_paths,
        _ => return Err(format!("unknown setting `{key}` in section `[{section}]`")),
    };
    slot.extend(items.iter().cloned());
    Ok(())
}

// --------------------------------------------------------------- linting

/// One rule violation, reported as `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

fn path_matches(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// `std::thread` items that reintroduce uninstrumented scheduling.
const THREAD_BANNED: [&str; 8] =
    ["spawn", "sleep", "yield_now", "Builder", "park", "park_timeout", "scope", "JoinHandle"];

/// Lint one file's source. `path` is repo-root-relative with `/` separators.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(lexed.tokens);
    let comments = lexed.comments;
    let mut out = Vec::new();
    let report = |out: &mut Vec<Violation>, line: u32, rule: &'static str, message: String| {
        out.push(Violation { file: path.to_string(), line, rule, message });
    };

    let sync_ok = path_matches(path, &cfg.std_sync_allow_paths);
    let thread_ok = path_matches(path, &cfg.std_thread_allow_paths);
    let instant_ok = path_matches(path, &cfg.instant_allow_paths);
    let unwrap_banned = path_matches(path, &cfg.no_unwrap_paths);

    let n = tokens.len();
    for i in 0..n {
        let t = &tokens[i];

        // std::sync::X / std::thread::X (single segment or a `{ … }` group).
        if t.is_ident("std")
            && i + 4 < n
            && tokens[i + 1].is_sym("::")
            && tokens[i + 3].is_sym("::")
        {
            let module = tokens[i + 2].ident().unwrap_or("");
            let (is_sync, allowed_here, allow_symbols): (bool, bool, &[String]) = match module {
                "sync" => (true, sync_ok, &cfg.std_sync_allow_symbols),
                "thread" => (false, thread_ok, &cfg.std_thread_allow_symbols),
                _ => continue,
            };
            if allowed_here {
                continue;
            }
            let flag = |out: &mut Vec<Violation>, tok: &Token, name: &str| {
                let allowed = allow_symbols.iter().any(|s| s == name);
                let banned =
                    if is_sync { !allowed } else { THREAD_BANNED.contains(&name) && !allowed };
                if banned {
                    let (rule, hint) = if is_sync {
                        ("std-sync", "use the parking_lot / crossbeam shims")
                    } else {
                        ("std-thread", "use crossbeam::thread")
                    };
                    report(
                        out,
                        tok.line,
                        rule,
                        format!(
                            "direct `std::{module}::{name}` — {hint} so the code runs under \
                             the model checker"
                        ),
                    );
                }
            };
            match &tokens[i + 4].tok {
                Tok::Ident(name) => flag(&mut out, &tokens[i + 4], name),
                Tok::Sym(s) if s == "{" => {
                    // Grouped import: flag each direct member (a nested
                    // `atomic::{…}` path is flagged at its head segment).
                    let mut j = i + 5;
                    let mut depth = 1;
                    let mut at_member = true;
                    while j < n && depth > 0 {
                        if tokens[j].is_sym("{") {
                            depth += 1;
                        } else if tokens[j].is_sym("}") {
                            depth -= 1;
                        } else if tokens[j].is_sym(",") && depth == 1 {
                            at_member = true;
                        } else if depth == 1 && at_member {
                            if let Some(name) = tokens[j].ident() {
                                if name != "self" {
                                    flag(&mut out, &tokens[j], name);
                                }
                            }
                            at_member = false;
                        }
                        j += 1;
                    }
                }
                _ => {}
            }
        }

        // Instant::now()
        if !instant_ok
            && t.is_ident("Instant")
            && i + 2 < n
            && tokens[i + 1].is_sym("::")
            && tokens[i + 2].is_ident("now")
        {
            report(
                &mut out,
                t.line,
                "instant-now",
                "`Instant::now()` outside the dispatch/metrics allowlist — thread the \
                 dispatch-captured anchor through instead (one clock read per query)"
                    .to_string(),
            );
        }

        // .unwrap( / .expect( in the no-panic files.
        if unwrap_banned && t.is_sym(".") && i + 2 < n && tokens[i + 2].is_sym("(") {
            if let Some(name @ ("unwrap" | "expect")) = tokens[i + 1].ident() {
                report(
                    &mut out,
                    tokens[i + 1].line,
                    "no-unwrap",
                    format!(
                        "`{name}()` in a network path — a malformed client must cost one \
                         connection, not the process"
                    ),
                );
            }
        }

        // static mut
        if t.is_ident("static") && i + 1 < n && tokens[i + 1].is_ident("mut") {
            report(
                &mut out,
                t.line,
                "static-mut",
                "`static mut` is unsynchronized shared state — use an atomic or a lock".to_string(),
            );
        }

        // unsafe { … } without a `// SAFETY:` comment nearby.
        if t.is_ident("unsafe") && i + 1 < n && tokens[i + 1].is_sym("{") {
            let line = t.line;
            let documented = comments
                .iter()
                .any(|(cl, text)| *cl + 6 >= line && *cl <= line && text.contains("SAFETY:"));
            if !documented {
                report(
                    &mut out,
                    line,
                    "safety-comment",
                    "`unsafe` block without a `// SAFETY:` comment justifying it".to_string(),
                );
            }
        }
    }
    out
}

/// Recursively lint every `.rs` file under `root`, skipping `target/`,
/// VCS metadata, test/bench/fixture trees, and the configured skip paths.
pub fn lint_tree(root: &Path, cfg: &Config) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        out.extend(lint_source(&rel, &src, cfg));
    }
    Ok(out)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            // Tests and benches never run under the model scheduler and may
            // use std primitives freely; fixtures are deliberate violations.
            if matches!(name.as_str(), ".git" | "target" | "tests" | "benches" | "fixtures") {
                continue;
            }
            if path_matches(&format!("{rel}/"), &cfg.skip_paths) {
                continue;
            }
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") && !path_matches(&rel, &cfg.skip_paths) {
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> Config {
        Config {
            std_sync_allow_symbols: ["Arc", "Weak", "Once", "OnceLock", "LazyLock"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            std_thread_allow_symbols: vec!["available_parallelism".to_string()],
            ..Config::default()
        }
    }

    fn rules(src: &str) -> Vec<&'static str> {
        lint_source("x.rs", src, &base_cfg()).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_std_sync_primitives_but_not_arc_family() {
        assert_eq!(rules("use std::sync::Mutex;"), ["std-sync"]);
        assert_eq!(rules("use std::sync::atomic::AtomicU64;"), ["std-sync"]);
        assert_eq!(rules("use std::sync::mpsc;"), ["std-sync"]);
        assert!(rules("use std::sync::Arc;").is_empty());
        assert!(rules("use std::sync::{Arc, OnceLock};").is_empty());
        assert_eq!(rules("use std::sync::{Arc, Mutex};"), ["std-sync"]);
    }

    #[test]
    fn flags_std_thread_scheduling_symbols_only() {
        assert_eq!(rules("std::thread::spawn(|| ());"), ["std-thread"]);
        assert_eq!(rules("use std::thread::{sleep, spawn};"), ["std-thread", "std-thread"]);
        assert!(rules("std::thread::available_parallelism();").is_empty());
        assert!(rules("std::thread::current().id();").is_empty());
    }

    #[test]
    fn flags_instant_now_unless_allowlisted() {
        assert_eq!(rules("let t = Instant::now();"), ["instant-now"]);
        let mut cfg = base_cfg();
        cfg.instant_allow_paths.push("x.rs".to_string());
        assert!(lint_source("x.rs", "let t = Instant::now();", &cfg).is_empty());
    }

    #[test]
    fn flags_unwrap_only_in_configured_files() {
        let mut cfg = base_cfg();
        cfg.no_unwrap_paths.push("net.rs".to_string());
        assert_eq!(lint_source("net.rs", "x.unwrap();", &cfg).len(), 1);
        assert_eq!(lint_source("net.rs", "x.expect(\"m\");", &cfg).len(), 1);
        assert!(lint_source("other.rs", "x.unwrap();", &cfg).is_empty());
    }

    #[test]
    fn flags_undocumented_unsafe_and_static_mut() {
        assert_eq!(rules("unsafe { x() }"), ["safety-comment"]);
        assert!(rules("// SAFETY: justified\nunsafe { x() }").is_empty());
        assert_eq!(rules("static mut X: u32 = 0;"), ["static-mut"]);
    }

    #[test]
    fn strings_comments_and_test_modules_are_exempt() {
        assert!(rules("let s = \"std::sync::Mutex\";").is_empty());
        assert!(rules("// std::sync::Mutex\n").is_empty());
        assert!(rules("let s = r#\"unsafe { \"quoted\" }\"#;").is_empty());
        assert!(rules("#[cfg(test)]\nmod t { use std::sync::Mutex; }").is_empty());
        assert!(rules("#[cfg(test)]\nuse std::sync::Mutex;").is_empty());
        // A non-test cfg does not exempt.
        assert_eq!(rules("#[cfg(unix)]\nmod m { use std::sync::Mutex; }"), ["std-sync"]);
    }

    #[test]
    fn lexer_survives_tricky_literals() {
        // Lifetimes, char literals, floats, tuple indexing.
        assert!(rules("fn f<'a>(x: &'a str) -> char { 'x' }").is_empty());
        let mut cfg = base_cfg();
        cfg.no_unwrap_paths.push("x.rs".to_string());
        // `t.0.unwrap()` must still be seen through the tuple index.
        assert_eq!(lint_source("x.rs", "t.0.unwrap();", &cfg).len(), 1);
    }

    #[test]
    fn config_parser_round_trips() {
        let cfg = parse_config(
            "# comment\n\
             [skip]\n\
             paths = [\"vendor/\"]\n\
             [std-sync]\n\
             allow_paths = [\n    \"crates/bench/\",\n    \"crates/modelcheck/\",\n]\n\
             allow_symbols = [\"Arc\", \"Weak\"]\n\
             [no-unwrap]\n\
             paths = [\"crates/server/src/conn.rs\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.skip_paths, ["vendor/"]);
        assert_eq!(cfg.std_sync_allow_paths, ["crates/bench/", "crates/modelcheck/"]);
        assert_eq!(cfg.std_sync_allow_symbols, ["Arc", "Weak"]);
        assert_eq!(cfg.no_unwrap_paths, ["crates/server/src/conn.rs"]);
        assert!(parse_config("[std-sync]\nbogus = [\"x\"]").is_err());
        assert!(parse_config("loose line").is_err());
    }
}
