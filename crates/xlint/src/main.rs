//! `cargo run -p xlint` — lint the workspace against `xlint.toml`.
//!
//! Walks every `.rs` file from the repository root (located via this
//! crate's manifest dir so the binary works from any cwd inside the repo),
//! prints one `path:line: [rule] message` per violation, and exits
//! non-zero if anything was flagged. CI runs this as a blocking gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);

    let config_path = root.join("xlint.toml");
    let text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("xlint: cannot read {}: {err}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match xlint::parse_config(&text) {
        Ok(cfg) => cfg,
        Err(err) => {
            eprintln!("xlint: {err}");
            return ExitCode::from(2);
        }
    };

    match xlint::lint_tree(&root, &cfg) {
        Ok(violations) if violations.is_empty() => {
            println!("xlint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xlint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xlint: walk failed: {err}");
            ExitCode::from(2)
        }
    }
}
