//! Fixture: the undocumented `unsafe` block must be flagged by
//! `safety-comment`; the documented one must not.

fn bad(p: *const u32) -> u32 {
    unsafe { *p } // BAD: no SAFETY comment
}

fn good(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
