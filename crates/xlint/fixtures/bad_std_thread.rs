//! Fixture: every line marked BAD must be flagged by the `std-thread` rule.

fn bad() {
    std::thread::spawn(|| {}); // BAD
    std::thread::sleep(std::time::Duration::from_millis(1)); // BAD
    std::thread::yield_now(); // BAD
}

fn allowed() {
    // Introspection-only items are allowed everywhere.
    let _ = std::thread::available_parallelism();
    let _ = std::thread::current();
}
