//! Fixture: must produce ZERO violations even when listed under
//! `[no-unwrap]` — every trap here lives in a string, comment, char
//! literal, lifetime, or `#[cfg(test)]` item.

use std::sync::Arc;

/* block comment decoy: std::sync::Mutex, unsafe { }, static mut */

fn tricky<'unsafe_looking_lifetime>(s: &'unsafe_looking_lifetime str) -> (char, usize) {
    let quote = '"';
    let raw = r#"std::thread::spawn(|| x.unwrap()); Instant::now(); static mut"#;
    let escaped = "nested \" quote then std::sync::RwLock";
    let shared = Arc::new(s.len());
    (quote, raw.len() + escaped.len() + *shared)
}

fn numbers(t: (f64,)) -> f64 {
    // Float literals and tuple indexing must not confuse the lexer.
    t.0 + 1.5e3 + 0x1f as f64
}

// SAFETY: reads a valid, caller-provided pointer.
fn documented(p: *const u32) -> u32 {
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;
    use std::time::Instant;

    fn exempt() {
        let _ = Mutex::new(Instant::now());
        std::thread::yield_now();
        let _ = Some(1).unwrap();
    }
}
