//! Fixture: every line marked BAD must be flagged by the `std-sync` rule.

use std::sync::Mutex; // BAD
use std::sync::{Arc, RwLock}; // BAD (RwLock; Arc is allowed)
use std::sync::atomic::AtomicUsize; // BAD
use std::sync::mpsc; // BAD

fn decoys() {
    // std::sync::Mutex in a comment is fine.
    let _ = "std::sync::Mutex in a string is fine";
    let _ = Arc::new(0u32);
}

#[cfg(test)]
mod tests {
    // Test modules may use std primitives freely.
    use std::sync::Mutex;

    fn exempt() {
        let _ = Mutex::new(0);
    }
}
