//! Fixture: the `static mut` must be flagged by `static-mut`.

static mut COUNTER: u32 = 0; // BAD

static OK: u32 = 0;

fn decoy() {
    let _ = "static mut in a string is fine";
}
