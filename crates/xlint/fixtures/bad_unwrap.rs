//! Fixture: listed under `[no-unwrap]` by the test, so both calls marked
//! BAD must be flagged.

fn bad(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); // BAD
    let b = y.expect("boom"); // BAD
    a + b
}

fn decoys(t: (Option<u32>,)) -> u32 {
    // .unwrap() in a comment is fine; so is a method merely named like it.
    let _ = "call .unwrap() here";
    t.0.unwrap_or(0)
}
