//! Fixture: the `Instant::now()` call must be flagged by `instant-now`.

use std::time::Instant;

fn bad() -> Instant {
    Instant::now() // BAD
}

fn decoy() {
    // Instant::now() in a comment is fine.
    let _ = "Instant::now() in a string is fine";
}
