//! `redisgraph-server` — the stand-alone network server binary: binds a TCP
//! listener, serves the RESP protocol over real sockets, and shuts down
//! gracefully on SIGINT/SIGTERM or a client's `SHUTDOWN` command (in-flight
//! queries drain before the process exits 0).
//!
//! ```text
//! cargo run --release --bin redisgraph-server -- --port 6380 --threads 8
//! redis-cli -p 6380 GRAPH.QUERY social "MATCH (n) RETURN count(n)"
//! ```
//!
//! `--port 0` picks an ephemeral port; pair it with `--addr-file` so scripts
//! (CI's `network-e2e` job) can discover the bound address.

use crossbeam::atomic::{AtomicBool, Ordering};
use datagen::RmatConfig;
use redisgraph_server::{GraphServer, RedisGraphServer, ServerConfig};
use std::sync::{Arc, OnceLock};

/// The server's own shutdown flag, published before handlers are installed.
/// Process-global because POSIX hands the handler no context pointer; the
/// signal path and the `SHUTDOWN` command path flip the *same* flag, so
/// [`GraphServer::wait`] is the single place the stop is observed.
static SHUTDOWN_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: an atomic store, nothing else.
    if let Some(flag) = SHUTDOWN_FLAG.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Route SIGINT (2) and SIGTERM (15) to [`on_signal`]. `std` links libc on
/// every supported platform, so the one symbol is declared directly instead
/// of pulling in the `libc` crate.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal(2)` is async-signal-safe to install from the main
    // thread before any listener exists, and `on_signal` performs only an
    // atomic store, which is legal in a signal handler.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

const USAGE: &str = "\
redisgraph-server — RESP-over-TCP server for the RedisGraph reproduction

USAGE:
    redisgraph-server [FLAGS]

FLAGS:
    --host <ADDR>                bind address            [default: 127.0.0.1]
    --port <PORT>                bind port, 0 = ephemeral [default: 6380]
    --threads <N>                query worker pool size   [default: 4]
    --query-threads <N>          intra-query GraphBLAS threads (QUERY_THREADS)
    --delta-threshold <N>        delta flush threshold (DELTA_MAX_PENDING_CHANGES)
    --max-query-buffer <BYTES>   per-connection unparsed-input cap (MAX_QUERY_BUFFER)
    --max-connections <N>        concurrent connection cap [default: 128]
    --slowlog-threshold <MS>     log queries at/over this many milliseconds
                                 (SLOWLOG_TIME_THRESHOLD, 0 = log everything)
    --plan-cache-size <N>        cached plans per graph, 0 disables
                                 (PLAN_CACHE_SIZE)
    --preload-scale <N>          bulk-load an RMAT scale-N graph before serving
    --preload-edge-factor <N>    edges per vertex for the preload [default: 8]
    --preload-graph <NAME>       graph key for the preload [default: bench]
    --addr-file <PATH>           write the bound host:port to PATH after bind
    --help                       print this help
";

/// Fetch a flag's value. Absent flag → `None` (caller applies its default);
/// present-but-unparseable value → error exit, never a silent default — a
/// server listening on a port other than the one the operator typed is
/// strictly worse than refusing to start.
fn arg<T: std::str::FromStr>(argv: &[String], name: &str) -> Option<T> {
    let i = argv.iter().position(|a| a == name)?;
    let Some(raw) = argv.get(i + 1) else {
        eprintln!("redisgraph-server: flag {name} requires a value");
        std::process::exit(2);
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("redisgraph-server: invalid value for {name}: `{raw}`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let host: String = arg(&argv, "--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = arg(&argv, "--port").unwrap_or(6380);
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        thread_count: arg(&argv, "--threads").unwrap_or(defaults.thread_count),
        query_threads: arg(&argv, "--query-threads"),
        delta_max_pending_changes: arg(&argv, "--delta-threshold")
            .unwrap_or(defaults.delta_max_pending_changes),
        max_query_buffer: arg(&argv, "--max-query-buffer").unwrap_or(defaults.max_query_buffer),
        max_connections: arg(&argv, "--max-connections").unwrap_or(defaults.max_connections),
        slowlog_time_threshold_ms: arg(&argv, "--slowlog-threshold")
            .unwrap_or(defaults.slowlog_time_threshold_ms),
        plan_cache_size: arg(&argv, "--plan-cache-size").unwrap_or(defaults.plan_cache_size),
    };

    let server = Arc::new(RedisGraphServer::new(config));

    // Optional preload: bulk-load a generated RMAT graph through the
    // in-process API so benchmark clients find data without streaming a
    // dataset over the wire first.
    if let Some(scale) = arg::<u32>(&argv, "--preload-scale") {
        let edge_factor: u32 = arg(&argv, "--preload-edge-factor").unwrap_or(8);
        let name: String = arg(&argv, "--preload-graph").unwrap_or_else(|| "bench".to_string());
        let el = datagen::rmat::generate(&RmatConfig {
            scale,
            edge_factor,
            seed: 42,
            ..RmatConfig::default()
        });
        let graph = server.graph(&name);
        graph.write().bulk_load(el.num_vertices, &el.edges);
        println!(
            "preloaded graph `{name}`: {} vertices, {} edges (RMAT scale {scale})",
            el.num_vertices,
            el.edges.len()
        );
    }

    let net = match GraphServer::bind_with((host.as_str(), port), server) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("redisgraph-server: cannot bind {host}:{port}: {e}");
            std::process::exit(1);
        }
    };
    let addr = net.local_addr();
    println!(
        "redisgraph-server listening on {addr} ({} workers, max {} connections)",
        net.server().config().thread_count,
        net.server().config().max_connections
    );
    if let Some(path) = arg::<String>(&argv, "--addr-file") {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("redisgraph-server: cannot write --addr-file {path}: {e}");
            std::process::exit(1);
        }
    }

    SHUTDOWN_FLAG.set(net.shutdown_flag()).expect("flag published once");
    install_signal_handlers();

    // Serve until a signal or a client's SHUTDOWN command flips the flag;
    // wait() then performs the graceful stop (drain in-flight, close, join).
    net.wait();
    println!("redisgraph-server: bye");
}
