//! # redisgraph (umbrella crate)
//!
//! Facade over the workspace reproducing *"RedisGraph: GraphBLAS Enabled
//! Graph Database"* (Cailliau et al., IPDPSW 2019). It re-exports the
//! user-facing pieces of each layer so quick experiments can depend on one
//! crate, and it hosts the cross-crate integration tests
//! (`tests/integration.rs`) and the runnable examples (`examples/`).
//!
//! Layer map (bottom to top):
//!
//! * [`graphblas`] — sparse matrices/vectors and the algebraic kernels
//!   (`mxm`, `mxv`/`vxm`, `ewise`, `transpose`, …);
//! * [`algo`] — LAGraph-style whole-graph algorithms (BFS, SSSP, PageRank,
//!   WCC, triangle counting) on the same matrix substrate, surfaced in
//!   Cypher as `CALL algo.*` procedures;
//! * [`cypher`] — openCypher lexer/parser producing the AST;
//! * [`core`](redisgraph_core) — the graph store (DataBlocks + label and
//!   relation matrices) and the AST→plan→GraphBLAS executor;
//! * [`server`](redisgraph_server) — RESP framing, the single-threaded
//!   dispatcher, and the module worker pool;
//! * [`datagen`] / [`baseline`] — benchmark datasets and the
//!   adjacency-list comparison engine.

pub use algo;
pub use baseline;
pub use cypher;
pub use datagen;
pub use graphblas;
pub use redisgraph_core as core;
pub use redisgraph_server as server;

pub use redisgraph_core::{Graph, Value};
pub use redisgraph_server::{RedisGraphServer, RespValue, ServerConfig};
