//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate. The build environment has no crates.io access, so this vendored
//! crate provides criterion's API shape — `Criterion`, benchmark groups,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! harness: each benchmark is warmed up once, then timed over a bounded
//! number of iterations, and the mean time per iteration is printed.
//!
//! It does not implement statistical analysis, HTML reports, or baselines;
//! it exists so `cargo bench` runs and prints comparable numbers without the
//! real dependency.

use std::fmt;
use std::time::{Duration, Instant};

pub use black_box_shim::black_box;

mod black_box_shim {
    /// Re-export of `std::hint::black_box` under criterion's historical name.
    pub use std::hint::black_box;
}

/// Throughput annotation for a benchmark group: scales the printed rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("threads", 4)` → `threads/4`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Names acceptable where criterion takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `iterations` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark registry. `Default` honours the
/// `CRITERION_SAMPLE_SIZE` environment variable (default 10 iterations per
/// benchmark — this is a stub harness, not a statistics engine).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size =
            std::env::var("CRITERION_SAMPLE_SIZE").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Override the default per-benchmark iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", &id.into_benchmark_id(), sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate the group's throughput (printed as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into_benchmark_id(), self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the stub; exists for API
    /// compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { iterations: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "bench {label:60} {:>12.3} ms/iter {:>14.0} elem/s",
            per_iter * 1e3,
            n as f64 / per_iter.max(f64::MIN_POSITIVE),
        ),
        Some(Throughput::Bytes(n)) => println!(
            "bench {label:60} {:>12.3} ms/iter {:>14.0} B/s",
            per_iter * 1e3,
            n as f64 / per_iter.max(f64::MIN_POSITIVE),
        ),
        None => println!("bench {label:60} {:>12.3} ms/iter", per_iter * 1e3),
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_shape_works_end_to_end() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::new("param", n), &n, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        }
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(3 * 3)));
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("threads", 4).to_string(), "threads/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
