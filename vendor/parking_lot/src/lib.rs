//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate. The build environment has no crates.io access, so this vendored
//! crate provides `Mutex` and `RwLock` with parking_lot's signature — locking
//! returns the guard directly, without a `Result` — implemented over the std
//! primitives with poisoning recovered transparently (parking_lot locks do
//! not poison; a panicking holder simply releases the lock).
//!
//! Like the real parking_lot, the `RwLock` is *writer-preferring*: once a
//! writer is parked waiting for the lock, newly arriving readers hold off
//! until it has been admitted. Without that gate an overlapping stream of
//! readers keeps the shared lock permanently held and the writer never runs
//! (std's `RwLock` makes no fairness promise, and on some platforms admits
//! readers past a parked writer indefinitely).
//!
//! With the `model` feature the whole crate is rebuilt over the
//! `modelcheck` scheduler backend: the embedded locks, the gate atomic, and
//! the spin yield all become instrumented scheduling points, so this exact
//! production code runs under deterministic model checking. Outside a model
//! execution the instrumented types delegate to std, so enabling the
//! feature (e.g. through test feature unification) changes nothing at
//! runtime.

use std::fmt;
use std::sync::TryLockError;

#[cfg(feature = "model")]
use modelcheck::sync;
#[cfg(feature = "model")]
use modelcheck::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(feature = "model"))]
use std::sync;
#[cfg(not(feature = "model"))]
use std::sync::atomic::{AtomicUsize, Ordering};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[cfg_attr(xmut_no_writer_gate, allow(dead_code))]
fn spin_yield() {
    #[cfg(feature = "model")]
    modelcheck::thread::yield_now();
    #[cfg(not(feature = "model"))]
    std::thread::yield_now();
}

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that never poisons and prefers parked writers over
/// newly arriving readers.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    /// Number of writers currently parked in [`RwLock::write`]. While this is
    /// non-zero, [`RwLock::read`] holds new readers at the gate so the writer
    /// cannot be starved by overlapping read sections.
    writers_waiting: AtomicUsize,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock { writers_waiting: AtomicUsize::new(0), inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking until available.
    ///
    /// Yields while any writer is parked: readers already inside keep their
    /// guards, but no new reader overtakes a waiting writer. (Consequently,
    /// recursive `read()` while a writer waits would deadlock — the same
    /// caveat the real parking_lot documents.)
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        // `xmut_no_writer_gate` is a seeded mutant for the model-checker CI
        // smoke test: compiling the gate away must make the fairness suite
        // fail, proving the checker detects the writer-starvation bug.
        #[cfg(not(xmut_no_writer_gate))]
        while self.writers_waiting.load(Ordering::Acquire) > 0 {
            spin_yield();
        }
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        // Announce the parked writer *before* blocking so the reader gate in
        // `read()` closes immediately; drop the announcement only once the
        // lock is held (new readers then queue on `inner` behind this guard).
        self.writers_waiting.fetch_add(1, Ordering::AcqRel);
        let guard = self.inner.write();
        self.writers_waiting.fetch_sub(1, Ordering::AcqRel);
        guard.unwrap_or_else(|e| e.into_inner())
    }

    /// Number of writers currently parked in [`RwLock::write`]. Exposed for
    /// the model-check fairness suite, which needs to observe that a writer
    /// has reached the parked state before asserting readers hold off.
    pub fn queued_writers(&self) -> usize {
        self.writers_waiting.load(Ordering::Acquire)
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire the write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_allows_many_readers() {
        let lock = RwLock::new(5);
        let r1 = lock.read();
        let r2 = lock.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    fn rwlock_write_is_exclusive() {
        let lock = RwLock::new(0);
        {
            let mut w = lock.write();
            *w = 7;
            assert!(lock.try_read().is_none());
        }
        assert_eq!(*lock.read(), 7);
    }

    #[test]
    fn locks_survive_a_panicking_holder() {
        let lock = Arc::new(Mutex::new(1));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, the next lock just succeeds.
        assert_eq!(*lock.lock(), 1);

        let rw = Arc::new(RwLock::new(2));
        let rw2 = rw.clone();
        let _ = std::thread::spawn(move || {
            let _guard = rw2.write();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*rw.read(), 2);
    }

    #[test]
    fn parked_writer_is_admitted_before_later_readers() {
        use std::time::Duration;

        let lock = Arc::new(RwLock::new(Vec::<&'static str>::new()));
        // Hold a read guard so the writer must park.
        let early_read = lock.read();

        let w = {
            let lock = lock.clone();
            std::thread::spawn(move || lock.write().push("writer"))
        };
        // Let the writer reach the parked state (writers_waiting > 0).
        while lock.writers_waiting.load(Ordering::Acquire) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }

        // A reader arriving *after* the writer parked must not overtake it.
        let r = {
            let lock = lock.clone();
            std::thread::spawn(move || {
                let guard = lock.read();
                assert_eq!(guard.as_slice(), ["writer"], "reader overtook a parked writer");
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(early_read);
        w.join().unwrap();
        r.join().unwrap();
    }

    #[test]
    fn writer_latency_is_bounded_under_reader_churn() {
        use std::sync::atomic::AtomicBool;
        use std::time::{Duration, Instant};

        // Mixed workload: reader threads continuously take overlapping read
        // sections; a writer arriving mid-stream must get through in bounded
        // time rather than starving until the readers stop.
        let lock = Arc::new(RwLock::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let (lock, stop) = (lock.clone(), stop.clone());
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let guard = lock.read();
                        std::thread::sleep(Duration::from_millis(1));
                        drop(guard);
                    }
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        *lock.write() += 1;
        let latency = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*lock.read(), 1);
        // Generous bound — without the writer gate this starves for the full
        // reader-churn window; with it the writer gets in within a few
        // read-section lengths even on a single-CPU host.
        assert!(latency < Duration::from_millis(500), "write took {latency:?}");
    }
}
