//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate. The build environment has no crates.io access, so this vendored
//! crate provides `Mutex` and `RwLock` with parking_lot's signature — locking
//! returns the guard directly, without a `Result` — implemented over the std
//! primitives with poisoning recovered transparently (parking_lot locks do
//! not poison; a panicking holder simply releases the lock).

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire the write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_allows_many_readers() {
        let lock = RwLock::new(5);
        let r1 = lock.read();
        let r2 = lock.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    fn rwlock_write_is_exclusive() {
        let lock = RwLock::new(0);
        {
            let mut w = lock.write();
            *w = 7;
            assert!(lock.try_read().is_none());
        }
        assert_eq!(*lock.read(), 7);
    }

    #[test]
    fn locks_survive_a_panicking_holder() {
        let lock = Arc::new(Mutex::new(1));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, the next lock just succeeds.
        assert_eq!(*lock.lock(), 1);

        let rw = Arc::new(RwLock::new(2));
        let rw2 = rw.clone();
        let _ = std::thread::spawn(move || {
            let _guard = rw2.write();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*rw.read(), 2);
    }
}
