//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::StandardSample;
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as StandardSample>::sample_standard(rng)
            }
        })*
    };
}
impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
