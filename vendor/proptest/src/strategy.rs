//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// References to strategies are strategies (lets helpers pass `&strategy`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Map a strategy's output through a function.
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) func: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.func)(self.source.generate(rng))
    }
}

/// Extension: `.prop_map(f)` as in real proptest.
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { source: self, func: f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_repeats_its_value() {
        let mut rng = TestRng::from_seed(1);
        let s = Just("x");
        assert_eq!(s.generate(&mut rng), "x");
        assert_eq!(s.generate(&mut rng), "x");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-4i64..=4).generate(&mut rng);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::from_seed(3);
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }
}
