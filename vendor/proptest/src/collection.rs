//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A size specification for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max_excl: exact + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_excl: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_excl: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s whose elements come from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 >= self.size.max_excl {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max_excl)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_requested_range() {
        let strat = vec(0u64..5, 0..4);
        let mut rng = TestRng::from_seed(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 4);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&s| s), "lengths 0..4 all reachable");
    }

    #[test]
    fn exact_size_spec() {
        let strat = vec(0u64..5, 3);
        let mut rng = TestRng::from_seed(10);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 3);
        }
    }
}
