//! The deterministic case runner: per-test RNG and failure type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Default number of generated cases per property (overridable with the
/// `PROPTEST_CASES` environment variable).
pub const DEFAULT_CASES: usize = 64;

/// Number of cases each property runs.
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CASES)
}

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG driving generation: xoshiro (via the vendored `rand`), seeded from
/// a hash of the test name so every test has its own deterministic stream.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed tag.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ 0x70726f70_74657374) } // "prop" "test"
    }

    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
