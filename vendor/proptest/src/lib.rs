//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate. The build environment has no crates.io access, so this vendored
//! crate implements the subset of the API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * strategies: integer ranges, tuples of strategies,
//!   `prop::collection::vec`, [`strategy::Just`], and `any::<T>()` for
//!   primitive types.
//!
//! Cases are generated from a seed derived from the test's name, so runs are
//! fully deterministic. There is **no shrinking**: a failing case reports the
//! case number and message; the deterministic seed means it can be replayed
//! by re-running the test. The case count defaults to 64 and can be raised
//! with the `PROPTEST_CASES` environment variable, as with real proptest.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors real proptest's `prelude::prop` module shortcut
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a `proptest!` body; failure aborts the current
/// case with a message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` == `{:?}`", format!($($fmt)*), left, right
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` != `{:?}`", format!($($fmt)*), left, right
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` function that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )*
                    // The immediately-called closure gives `prop_assert!` a
                    // `Result` frame to early-return into.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case, cases, err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_strategy_respects_length_bounds(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn tuples_compose(t in ((0u64..4), (0u64..4), (-3i64..3))) {
            let (r, c, v) = t;
            prop_assert!(r < 4 && c < 4);
            prop_assert!((-3..3).contains(&v));
        }

        #[test]
        fn any_bool_is_exhaustive_enough(_x in any::<bool>()) {
            // Just exercising the arbitrary path.
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("always_fails"), "panic message: {msg}");
        assert!(msg.contains("case 0"), "panic message: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 10..20);
        let mut rng1 = crate::test_runner::TestRng::from_name("same");
        let mut rng2 = crate::test_runner::TestRng::from_name("same");
        assert_eq!(strat.generate(&mut rng1), strat.generate(&mut rng2));
    }
}
