//! Atomics, routed through this shim so production code stays
//! model-checkable: with the `model` feature these are the `modelcheck`
//! instrumented atomics (each access a scheduling point, delegating to std
//! outside an execution); without it they are exactly the std types.
//!
//! Production crates use these instead of `std::sync::atomic` directly —
//! enforced by the `no-std-sync` xlint rule.

#[cfg(feature = "model")]
pub use modelcheck::sync::atomic::{
    AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
