//! Scoped threads: crossbeam's `thread::scope` API on top of
//! `std::thread::scope` (stable since Rust 1.63), plus the plain
//! thread-management surface the workspace routes through this shim so all
//! thread creation stays model-checkable: [`Builder`], [`JoinHandle`],
//! [`spawn`], [`sleep`], [`yield_now`].
//!
//! Differences from crossbeam worth knowing: a child-thread panic propagates
//! when its `ScopedJoinHandle` is joined, or at scope exit otherwise — so
//! `scope` itself only returns `Err` if the closure's own body panics in
//! crossbeam; here the std scope re-raises instead. The workspace joins every
//! handle explicitly, which behaves identically in both implementations.
//!
//! With the `model` feature everything routes through `modelcheck::thread`:
//! spawned threads register with the deterministic scheduler (delegating to
//! std outside a model execution). The model `Scope` is `Clone` but not
//! `Copy` (it carries a scheduler handle); workspace code only uses
//! `&Scope`, which both variants support.

use std::any::Any;

#[cfg(feature = "model")]
pub use modelcheck::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
#[cfg(not(feature = "model"))]
pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};

/// A scope in which threads borrowing non-`'static` data can be spawned.
#[cfg(not(feature = "model"))]
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread; joining yields the closure's return value.
#[cfg(not(feature = "model"))]
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

#[cfg(not(feature = "model"))]
impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. As in crossbeam, the closure receives
    /// the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

#[cfg(not(feature = "model"))]
impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries the panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Run `f` with a scope handle; every thread spawned in the scope is joined
/// before `scope` returns. Returns `Ok` with the closure's value (panics from
/// unjoined children propagate as panics, see module docs).
#[cfg(not(feature = "model"))]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// A scope in which threads borrowing non-`'static` data can be spawned
/// (model variant: children register with the scheduler).
#[cfg(feature = "model")]
#[derive(Clone)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: modelcheck::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread; joining yields the closure's return value.
#[cfg(feature = "model")]
pub struct ScopedJoinHandle<'scope, T> {
    inner: modelcheck::thread::ScopedJoinHandle<'scope, T>,
}

#[cfg(feature = "model")]
impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. As in crossbeam, the closure receives
    /// the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = self.clone();
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

#[cfg(feature = "model")]
impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries the panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Run `f` with a scope handle; every thread spawned in the scope is joined
/// before `scope` returns (under the scheduler's control in model runs).
#[cfg(feature = "model")]
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(modelcheck::thread::scope(|s| f(&Scope { inner: s.clone() })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let result =
            scope(|s| s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap())
                .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn join_reports_child_panic() {
        let _ = scope(|s| {
            let handle = s.spawn(|_| panic!("child failed"));
            assert!(handle.join().is_err());
        });
    }

    #[test]
    fn plain_spawn_and_builder_roundtrip() {
        let h = spawn(|| 2 + 2);
        assert_eq!(h.join().unwrap(), 4);
        let h =
            Builder::new().name("shim-test".to_string()).spawn(|| 8).expect("spawn via builder");
        assert_eq!(h.join().unwrap(), 8);
    }
}
