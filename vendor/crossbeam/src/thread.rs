//! Scoped threads: crossbeam's `thread::scope` API on top of
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from crossbeam worth knowing: a child-thread panic propagates
//! when its `ScopedJoinHandle` is joined, or at scope exit otherwise — so
//! `scope` itself only returns `Err` if the closure's own body panics in
//! crossbeam; here the std scope re-raises instead. The workspace joins every
//! handle explicitly, which behaves identically in both implementations.

use std::any::Any;

/// A scope in which threads borrowing non-`'static` data can be spawned.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread; joining yields the closure's return value.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. As in crossbeam, the closure receives
    /// the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` carries the panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Run `f` with a scope handle; every thread spawned in the scope is joined
/// before `scope` returns. Returns `Ok` with the closure's value (panics from
/// unjoined children propagate as panics, see module docs).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let result =
            scope(|s| s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap())
                .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn join_reports_child_panic() {
        let _ = scope(|s| {
            let handle = s.spawn(|_| panic!("child failed"));
            assert!(handle.join().is_err());
        });
    }
}
