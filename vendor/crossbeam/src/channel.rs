//! MPMC channels with crossbeam-compatible disconnect semantics.
//!
//! Under the `model` feature the `Mutex`/`Condvar` backing the channel are
//! the modelcheck instrumented types: this exact protocol (including its
//! wait/notify pairing) runs under the deterministic scheduler, which is
//! how the lost-wakeup suite exercises the production channel.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(feature = "model")]
use modelcheck::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "model"))]
use std::sync::{Condvar, Mutex, MutexGuard};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half. Cloneable; the channel disconnects when the last clone drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half. Cloneable (multi-consumer); the channel disconnects for
/// senders when the last clone drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message back to the caller.
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the channel still empty (but connected).
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

/// Create an unbounded channel: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded channel: `send` blocks while `cap` messages are queued.
/// (`cap == 0`, crossbeam's rendezvous channel, is approximated with a
/// capacity of one; the workspace never creates one.)
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

fn lock<T>(shared: &Shared<T>) -> MutexGuard<'_, Inner<T>> {
    // A panicking sender/receiver must not wedge the channel.
    shared.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = lock(&self.shared);
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.shared);
        inner.senders -= 1;
        let disconnected = inner.senders == 0;
        drop(inner);
        if disconnected {
            // Wake every blocked receiver so it can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking until one arrives. Fails only when the
    /// channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = lock(&self.shared);
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock(&self.shared);
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = lock(&self.shared);
        if let Some(value) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(value);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.shared);
        inner.receivers -= 1;
        let disconnected = inner.receivers == 0;
        drop(inner);
        if disconnected {
            // Wake every sender blocked on a full bounded channel.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn receivers_are_cloneable_and_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn multiple_consumers_drain_everything_exactly_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv below
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(9));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }
}
