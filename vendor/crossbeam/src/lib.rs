//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate. The build environment has no crates.io access, so this vendored
//! crate implements the pieces the workspace uses:
//!
//! * [`channel`] — multi-producer **multi-consumer** channels (`unbounded`,
//!   `bounded`) with crossbeam's disconnect semantics, built on
//!   `Mutex` + `Condvar`;
//! * [`thread`] — scoped threads (`thread::scope`, `Scope::spawn`) plus the
//!   thread-management surface the workspace routes through this shim
//!   (`spawn`, `Builder`, `sleep`, `yield_now`);
//! * [`atomic`] — the atomic integer/bool types the workspace uses.
//!
//! Semantics match crossbeam where the workspace depends on them: cloneable
//! receivers, `recv` returning `Err` once the channel is empty and all
//! senders are gone, blocking `send` on a full bounded channel, and scoped
//! spawn closures receiving the scope as an argument.
//!
//! With the `model` feature every module is rebuilt over the `modelcheck`
//! scheduler backend, so the production channel/pool/thread code runs under
//! deterministic model checking; outside a model execution the instrumented
//! types delegate to std, making the feature inert in ordinary builds.

pub mod atomic;
pub mod channel;
pub mod thread;
