//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate. The build environment has no crates.io access, so this vendored
//! crate implements the two pieces the workspace uses:
//!
//! * [`channel`] — multi-producer **multi-consumer** channels (`unbounded`,
//!   `bounded`) with crossbeam's disconnect semantics, built on
//!   `Mutex` + `Condvar`;
//! * [`thread`] — scoped threads (`thread::scope`, `Scope::spawn`) as a thin
//!   wrapper over `std::thread::scope`.
//!
//! Semantics match crossbeam where the workspace depends on them: cloneable
//! receivers, `recv` returning `Err` once the channel is empty and all
//! senders are gone, blocking `send` on a full bounded channel, and scoped
//! spawn closures receiving the scope as an argument.

pub mod channel;
pub mod thread;
