//! Slice sampling helpers (the subset of `rand::seq` the workspace uses).

use crate::{Rng, RngCore};

/// Extension methods on slices for random sampling.
pub trait SliceRandom {
    type Item;

    /// Choose one element uniformly, or `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Choose `amount` distinct elements (fewer if the slice is shorter),
    /// in random order, without replacement.
    fn choose_multiple<R: RngCore>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table: O(len) setup, O(amount) draws.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut picked = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
            picked.push(&self[indices[i]]);
        }
        picked.into_iter()
    }

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_multiple_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let items: Vec<u64> = (0..100).collect();
        let picked: Vec<u64> = items.choose_multiple(&mut rng, 30).copied().collect();
        assert_eq!(picked.len(), 30);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "sampling must be without replacement");
    }

    #[test]
    fn choose_multiple_clamps_to_slice_len() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3];
        assert_eq!(items.choose_multiple(&mut rng, 10).count(), 3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut items: Vec<u32> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, sorted, "a 50-element shuffle should not be identity");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(7);
        let items: [u8; 0] = [];
        assert!(items.choose(&mut rng).is_none());
    }
}
