//! Concrete generators. `StdRng` is xoshiro256** seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256** (Blackman & Vigna), a fast
/// all-purpose generator with 256 bits of state.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro requires a not-all-zero state; SplitMix64 never produces
        // four zero outputs from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference sequence for state {1, 2, 3, 4} from the xoshiro256**
        // authors' test vectors.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let expect: [u64; 5] = [11520, 0, 1509978240, 1215971899390074240, 1216172134540287360];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_avoids_zero_state() {
        let rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.s, [0, 0, 0, 0]);
    }
}
