//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom` — on top of xoshiro256** seeded via SplitMix64.
//!
//! It is **not** a cryptographic RNG and does not promise stream
//! compatibility with the real `rand` crate; it only promises deterministic,
//! statistically reasonable streams per seed, which is what the data
//! generators and property tests rely on.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material (the subset we need).
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed, expanding it with
    /// SplitMix64 exactly as the real `rand` crate documents.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw bit stream (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (the stand-in for `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (bounded_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (bounded_u64(rng, span + 1) as $t)
                }
            }
        )*
    };
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
                }
            }
        )*
    };
}
impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, bound)` via Lemire's multiply-shift with a
/// rejection step to remove modulo bias.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value via the standard distribution (`rng.gen::<f64>()` is a
    /// uniform draw from `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
